package dataload

import (
	"bytes"
	"fmt"
	"io"
	"os"

	"candle/internal/csvio"
)

// Byte-range sharding: shard i of n over a file of `size` bytes
// nominally starts at size*i/n, adjusted forward to the next line
// start so every line belongs to exactly one shard. Every rank
// computes its own boundaries with the same rule from the same file,
// so no coordination is needed to agree on the partition — only the
// schema handshake (rank 0's column count) crosses ranks.

// shardStart returns the byte offset where shard i of n begins. The
// rule: offset 0 for shard 0, the file size for shard n, and
// otherwise the first line start at or after the nominal boundary
// size*i/n (scanning from nominal-1, so a line beginning exactly on
// the boundary stays with the later shard).
func shardStart(r io.ReaderAt, size int64, i, n int) (int64, error) {
	if i <= 0 {
		return 0, nil
	}
	if i >= n {
		return size, nil
	}
	nominal := size * int64(i) / int64(n)
	if nominal == 0 {
		return 0, nil
	}
	buf := make([]byte, 64<<10)
	for pos := nominal - 1; pos < size; {
		m := len(buf)
		if int64(m) > size-pos {
			m = int(size - pos)
		}
		k, err := r.ReadAt(buf[:m], pos)
		if k > 0 {
			if idx := bytes.IndexByte(buf[:k], '\n'); idx >= 0 {
				return pos + int64(idx) + 1, nil
			}
			pos += int64(k)
		}
		if err == io.EOF {
			break
		}
		if err != nil {
			return 0, fmt.Errorf("dataload: boundary scan: %w", err)
		}
	}
	return size, nil
}

// countLinesBefore counts the newlines in path's first `upTo` bytes —
// the lazy translation from a shard-local line number to a file line
// number, paid only on the error path so the hot path never scans
// bytes outside its own shard.
func countLinesBefore(path string, upTo int64) int {
	f, err := os.Open(path)
	if err != nil {
		return 0
	}
	defer f.Close()
	buf := make([]byte, 256<<10)
	var n int64
	lines := 0
	for n < upTo {
		m := len(buf)
		if int64(m) > upTo-n {
			m = int(upTo - n)
		}
		k, err := f.Read(buf[:m])
		if k > 0 {
			lines += bytes.Count(buf[:k], []byte{'\n'})
			n += int64(k)
		}
		if err != nil {
			break
		}
	}
	return lines
}

// sectionParser accumulates the rows of one byte range, enforcing
// rectangularity as it goes. wantCols > 0 enforces the schema the
// rank-0 handshake established; otherwise the section's first row
// sets the column count.
type sectionParser struct {
	wantCols int
	cols     int
	rows     int
	data     []float64
	line     int   // 1-based local line counter (blank lines included)
	bytes    int64 // source bytes consumed
	rowBuf   []float64
}

// errAt wraps a raw parse failure with its location, translating the
// local line to a file line number.
func (p *sectionParser) errAt(path, engine string, shardOff int64, err error) error {
	return &csvio.ParseError{
		Path:   path,
		Line:   countLinesBefore(path, shardOff) + p.line,
		Engine: engine,
		Err:    err,
	}
}

func (p *sectionParser) addLine(line []byte) error {
	p.line++
	line = bytes.TrimSuffix(line, []byte{'\r'})
	if len(line) == 0 {
		return nil
	}
	var err error
	p.rowBuf, err = csvio.ParseRow(line, p.rowBuf[:0])
	if err != nil {
		return err
	}
	want := p.wantCols
	if want <= 0 {
		want = p.cols
	}
	if p.rows > 0 || p.wantCols > 0 {
		if want > 0 && len(p.rowBuf) != want {
			return fmt.Errorf("ragged row: %d columns, want %d", len(p.rowBuf), want)
		}
	}
	if p.rows == 0 {
		p.cols = len(p.rowBuf)
	}
	p.data = append(p.data, p.rowBuf...)
	p.rows++
	return nil
}

// consume parses every line of r. After each blockRows parsed rows it
// calls onBlock with the half-open row range just completed, so a
// streaming caller can hand blocks downstream while the parse
// continues; onBlock may be nil, and a non-nil return aborts the
// parse (a closed consumer). Parse errors carry the local line in
// p.line — the caller adds the shard offset.
func (p *sectionParser) consume(r io.Reader, blockRows int, onBlock func(lo, hi int) error) error {
	buf := make([]byte, 1<<20)
	var carry []byte
	lastEmit := p.rows
	emit := func() error {
		if onBlock != nil && p.rows > lastEmit {
			if err := onBlock(lastEmit, p.rows); err != nil {
				return err
			}
			lastEmit = p.rows
		}
		return nil
	}
	for {
		n, readErr := r.Read(buf)
		if n > 0 {
			p.bytes += int64(n)
			data := buf[:n]
			for {
				idx := bytes.IndexByte(data, '\n')
				if idx < 0 {
					carry = append(carry, data...)
					break
				}
				var line []byte
				if len(carry) > 0 {
					carry = append(carry, data[:idx]...)
					line = carry
				} else {
					line = data[:idx]
				}
				if err := p.addLine(line); err != nil {
					return err
				}
				carry = carry[:0]
				data = data[idx+1:]
				if blockRows > 0 && p.rows-lastEmit >= blockRows {
					if err := emit(); err != nil {
						return err
					}
				}
			}
		}
		if readErr != nil {
			if readErr != io.EOF {
				return readErr
			}
			break
		}
	}
	if len(carry) > 0 {
		if err := p.addLine(carry); err != nil {
			return err
		}
	}
	return emit()
}
