package dataload

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"path/filepath"
	"testing"

	"candle/internal/tensor"
)

// validCacheBytes builds a well-formed cache file image for a small
// matrix, so the fuzzer starts from inputs that exercise the deep
// (CRC-valid) paths rather than dying at the frame check.
func validCacheBytes(t testing.TB, srcSize, srcMtime int64) []byte {
	t.Helper()
	m := tensor.New(3, 4)
	for i := range m.Data {
		m.Data[i] = float64(i) * 0.5
	}
	path := filepath.Join(t.TempDir(), "seed.bin")
	if err := writeCache(path, srcSize, srcMtime, m); err != nil {
		t.Fatalf("writeCache: %v", err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read seed cache: %v", err)
	}
	return raw
}

// FuzzReadCache feeds arbitrary bytes through the binary-cache parser.
// The contract under test: readCache must return nil, ErrCacheStale,
// or ErrCacheCorrupt (or a not-exist error for a missing file) — it
// must never panic, hang, or hand back a matrix whose dims disagree
// with its storage, no matter how the header, payload, or footer are
// mangled.
func FuzzReadCache(f *testing.F) {
	const srcSize, srcMtime = int64(1234), int64(987654321)
	valid := validCacheBytes(f, srcSize, srcMtime)
	f.Add(valid)
	// Truncations at every structural boundary.
	f.Add(valid[:0])
	f.Add(valid[:4])
	f.Add(valid[:cacheHeaderLen])
	f.Add(valid[:len(valid)-1])
	f.Add(valid[:len(valid)-cacheFooterLen])
	// Bad leading and trailing magic.
	mut := append([]byte(nil), valid...)
	mut[0] ^= 0xff
	f.Add(append([]byte(nil), mut...))
	mut = append([]byte(nil), valid...)
	mut[len(mut)-1] ^= 0xff
	f.Add(append([]byte(nil), mut...))
	// A flipped payload bit, which only the CRC can catch.
	mut = append([]byte(nil), valid...)
	mut[cacheHeaderLen+5] ^= 0x01
	f.Add(append([]byte(nil), mut...))
	// Stale source identity.
	mut = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(mut[8:], uint64(srcSize+1))
	f.Add(append([]byte(nil), mut...))
	// Huge dims whose product wraps around — the int-overflow case the
	// dims check must reject by division, not multiplication.
	mut = append([]byte(nil), valid...)
	binary.LittleEndian.PutUint64(mut[24:], 1<<62)
	binary.LittleEndian.PutUint64(mut[32:], 1<<62)
	f.Add(append([]byte(nil), mut...))

	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.bin")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatalf("write fuzz input: %v", err)
		}
		m, stored, err := readCache(path, srcSize, srcMtime)
		if err != nil {
			if !errors.Is(err, ErrCacheStale) && !errors.Is(err, ErrCacheCorrupt) && !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("unclassified error %v for %d-byte input", err, len(data))
			}
			return
		}
		if m == nil || m.Rows <= 0 || m.Cols <= 0 || len(m.Data) != m.Rows*m.Cols {
			t.Fatalf("accepted cache returned inconsistent matrix %+v", m)
		}
		if stored != int64(8*len(m.Data)) {
			t.Fatalf("stored bytes %d disagree with %d floats", stored, len(m.Data))
		}
	})
}

// TestReadCacheRejectsOverflowingDims pins the overflow fix outside the
// fuzz corpus: a header claiming 2^62 x 2^62 must be reported corrupt,
// not multiplied into a wrapped-around payload match.
func TestReadCacheRejectsOverflowingDims(t *testing.T) {
	const srcSize, srcMtime = int64(1234), int64(987654321)
	raw := validCacheBytes(t, srcSize, srcMtime)
	binary.LittleEndian.PutUint64(raw[24:], 1<<62)
	binary.LittleEndian.PutUint64(raw[32:], 1<<62)
	// Re-seal so only the dims check can object.
	reseal(raw)
	path := filepath.Join(t.TempDir(), "overflow.bin")
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	_, _, err := readCache(path, srcSize, srcMtime)
	if !errors.Is(err, ErrCacheCorrupt) {
		t.Fatalf("got %v, want ErrCacheCorrupt", err)
	}
}

// reseal recomputes the CRC footer after a test mutates header bytes.
func reseal(raw []byte) {
	body := raw[:len(raw)-cacheFooterLen]
	binary.BigEndian.PutUint32(raw[len(raw)-cacheFooterLen:], crc32.Checksum(body, cacheCRCTable))
	copy(raw[len(raw)-4:], cacheMagic)
}
