package dataload

import (
	"compress/gzip"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"candle/internal/csvio"
	"candle/internal/mpi"
	"candle/internal/tensor"
	"candle/internal/trace"
)

// genCSV builds a deterministic CSV exercising the parser's edge
// cases: integer and float cells, negatives, exponents, blank lines,
// and \r\n line endings.
func genCSV(seed int64, rows, cols int) string {
	rng := rand.New(rand.NewSource(seed))
	var sb strings.Builder
	for i := 0; i < rows; i++ {
		if i > 0 && rng.Intn(11) == 0 {
			sb.WriteString("\n") // blank line: skipped, but counted
		}
		for j := 0; j < cols; j++ {
			if j > 0 {
				sb.WriteByte(',')
			}
			switch rng.Intn(4) {
			case 0:
				fmt.Fprintf(&sb, "%d", rng.Intn(2000)-1000)
			case 1:
				fmt.Fprintf(&sb, "%.4f", rng.NormFloat64())
			case 2:
				fmt.Fprintf(&sb, "%g", rng.ExpFloat64()*1e-3)
			default:
				fmt.Fprintf(&sb, "%de%d", rng.Intn(90)+10, rng.Intn(5)-2)
			}
		}
		if rng.Intn(7) == 0 {
			sb.WriteString("\r\n")
		} else {
			sb.WriteString("\n")
		}
	}
	return sb.String()
}

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "data.csv")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func mustRead(t *testing.T, r csvio.Reader, path string) *tensor.Matrix {
	t.Helper()
	m, _, err := r.Read(path)
	if err != nil {
		t.Fatalf("%s: %v", r.Name(), err)
	}
	return m
}

// TestShardStartPartition checks the boundary rule: shards tile the
// file exactly, every boundary is a line start, and the partition is
// the same no matter which rank computes it.
func TestShardStartPartition(t *testing.T) {
	for _, rows := range []int{1, 2, 7, 100} {
		content := genCSV(int64(rows), rows, 5)
		path := writeFile(t, content)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		size := int64(len(content))
		for _, n := range []int{1, 2, 3, 4, 9} {
			prev := int64(0)
			for i := 0; i <= n; i++ {
				off, err := shardStart(f, size, i, n)
				if err != nil {
					t.Fatal(err)
				}
				if off < prev {
					t.Fatalf("rows=%d n=%d shard %d start %d < previous %d", rows, n, i, off, prev)
				}
				if off > 0 && off < size && content[off-1] != '\n' {
					t.Fatalf("rows=%d n=%d shard %d starts mid-line at %d", rows, n, i, off)
				}
				prev = off
			}
			if first, _ := shardStart(f, size, 0, n); first != 0 {
				t.Fatalf("shard 0 starts at %d", first)
			}
			if last, _ := shardStart(f, size, n, n); last != size {
				t.Fatalf("shard %d ends at %d, want %d", n, last, size)
			}
		}
		f.Close()
	}
}

// TestEnginesProduceIdenticalMatrices is the parity property: every
// registered engine — and the sharded engine at several world sizes,
// in both exchange modes — produces a bit-identical matrix from the
// same file.
func TestEnginesProduceIdenticalMatrices(t *testing.T) {
	cases := []struct {
		seed       int64
		rows, cols int
	}{
		{1, 1, 1},
		{2, 2, 3},
		{3, 3, 40}, // fewer rows than a 4-rank world
		{4, 57, 11},
		{5, 200, 23},
	}
	for _, tc := range cases {
		path := writeFile(t, genCSV(tc.seed, tc.rows, tc.cols))
		want := mustRead(t, csvio.NewNaiveReader(), path)

		for _, name := range csvio.Engines() {
			r, err := csvio.ByName(name)
			if err != nil {
				t.Fatal(err)
			}
			if dl, ok := r.(*Loader); ok {
				dl.Cache = false // parity of the parse itself
			}
			got := mustRead(t, r, path)
			if !got.Equal(want) {
				t.Fatalf("seed %d: engine %q differs from naive", tc.seed, name)
			}
		}

		for _, world := range []int{2, 4} {
			for _, deferred := range []bool{false, true} {
				var mu sync.Mutex
				got := make([]*tensor.Matrix, world)
				err := mpi.NewWorld(world).Run(func(c *mpi.Comm) error {
					l := &Loader{Comm: c, DeferExchange: deferred, BlockRows: 16}
					m, stats, err := l.Read(path)
					if err != nil {
						return err
					}
					if stats.CacheHit {
						return fmt.Errorf("rank %d: unexpected cache hit", c.Rank())
					}
					mu.Lock()
					got[c.Rank()] = m
					mu.Unlock()
					return nil
				})
				if err != nil {
					t.Fatalf("seed %d world %d deferred %v: %v", tc.seed, world, deferred, err)
				}
				for rank, m := range got {
					if !m.Equal(want) {
						t.Fatalf("seed %d world %d deferred %v: rank %d matrix differs from naive",
							tc.seed, world, deferred, rank)
					}
				}
			}
		}
	}
}

// parseLineOf extracts the ParseError line an engine reports for path,
// unwrapping through mpi.RankFailedError when the read ran on a world.
func parseLineOf(t *testing.T, err error, label string) int {
	t.Helper()
	if err == nil {
		t.Fatalf("%s: expected a parse error", label)
	}
	var pe *csvio.ParseError
	if !errors.As(err, &pe) {
		t.Fatalf("%s: error %v is not a *csvio.ParseError", label, err)
	}
	return pe.Line
}

// TestEngineErrorLinesAgree: ragged rows, truncated final rows, and
// malformed cells must be reported with the same 1-based line number
// by every engine, including the sharded engine across world sizes.
func TestEngineErrorLinesAgree(t *testing.T) {
	mkRows := func(n, cols int) []string {
		rows := make([]string, n)
		for i := range rows {
			cells := make([]string, cols)
			for j := range cells {
				cells[j] = fmt.Sprintf("%d.%d", i, j)
			}
			rows[i] = strings.Join(cells, ",")
		}
		return rows
	}
	cases := []struct {
		name    string
		content string
	}{
		{"ragged-mid", func() string {
			rows := mkRows(60, 6)
			rows[41] = "1,2,3" // ragged, well inside shard 2 of 4
			return strings.Join(rows, "\n") + "\n"
		}()},
		{"bad-cell", func() string {
			rows := mkRows(60, 6)
			rows[17] = "1,2,zap,4,5,6"
			return strings.Join(rows, "\n") + "\n"
		}()},
		{"truncated-final", func() string {
			rows := mkRows(60, 6)
			return strings.Join(rows, "\n") + "\n9,9" // no trailing newline
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := writeFile(t, tc.content)
			_, _, err := csvio.NewNaiveReader().Read(path)
			want := parseLineOf(t, err, "naive")

			for _, name := range csvio.Engines() {
				r, _ := csvio.ByName(name)
				if dl, ok := r.(*Loader); ok {
					dl.Cache = false
				}
				_, _, err := r.Read(path)
				if got := parseLineOf(t, err, name); got != want {
					t.Errorf("engine %q reports line %d, naive reports %d", name, got, want)
				}
			}
			for _, world := range []int{2, 4} {
				for _, deferred := range []bool{false, true} {
					err := mpi.NewWorld(world).Run(func(c *mpi.Comm) error {
						_, _, err := (&Loader{Comm: c, DeferExchange: deferred}).Read(path)
						if err == nil {
							return fmt.Errorf("rank %d: expected parse error", c.Rank())
						}
						return err
					})
					label := fmt.Sprintf("sharded world=%d deferred=%v", world, deferred)
					if got := parseLineOf(t, err, label); got != want {
						t.Errorf("%s reports line %d, naive reports %d", label, got, want)
					}
				}
			}
		})
	}
}

// TestGzipRoundTripAllEngines: every registered engine reads back a
// gzip-compressed CSV identical to the plain one, and the engines
// that shard or parallelize report the forced serial pass.
func TestGzipRoundTripAllEngines(t *testing.T) {
	content := genCSV(77, 80, 9)
	plain := writeFile(t, content)
	gzPath := filepath.Join(t.TempDir(), "data.csv.gz")
	f, err := os.Create(gzPath)
	if err != nil {
		t.Fatal(err)
	}
	zw := gzip.NewWriter(f)
	if _, err := io.WriteString(zw, content); err != nil {
		t.Fatal(err)
	}
	if err := zw.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := mustRead(t, csvio.NewNaiveReader(), plain)

	for _, name := range csvio.Engines() {
		r, _ := csvio.ByName(name)
		if dl, ok := r.(*Loader); ok {
			dl.Cache = false
		}
		m, stats, err := r.Read(gzPath)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !m.Equal(want) {
			t.Fatalf("engine %q: gzip read differs from plain", name)
		}
		switch name {
		case "parallel", EngineName:
			if !stats.SerialFallback {
				t.Errorf("engine %q: gzip read should report SerialFallback", name)
			}
		}
	}

	// Sharded on a world: gzip defeats byte-range sharding, so every
	// rank parses the whole stream with no collectives — and must not
	// deadlock or diverge.
	err = mpi.NewWorld(3).Run(func(c *mpi.Comm) error {
		m, stats, err := (&Loader{Comm: c}).Read(gzPath)
		if err != nil {
			return err
		}
		if !stats.SerialFallback {
			return fmt.Errorf("rank %d: want SerialFallback on gzip", c.Rank())
		}
		if !m.Equal(want) {
			return fmt.Errorf("rank %d: gzip matrix differs", c.Rank())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestCacheWarmStaleCorrupt covers the cache life cycle: a cold read
// writes the cache, a warm read serves from it bit-identically, a
// touched source invalidates it, and a corrupted file is detected and
// rebuilt.
func TestCacheWarmStaleCorrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "train.csv")
	if err := os.WriteFile(path, []byte(genCSV(9, 120, 7)), 0o644); err != nil {
		t.Fatal(err)
	}
	cacheDir := t.TempDir()
	l := func() *Loader { return &Loader{Cache: true, CacheDir: cacheDir} }

	cold, coldStats, err := l().Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if coldStats.CacheHit {
		t.Fatal("first read reported a cache hit")
	}
	cachePath := CachePath(path, cacheDir)
	if _, err := os.Stat(cachePath); err != nil {
		t.Fatalf("cold read did not write the cache: %v", err)
	}

	warm, warmStats, err := l().Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !warmStats.CacheHit {
		t.Fatal("second read missed the cache")
	}
	if !warm.Equal(cold) {
		t.Fatal("cache round-trip is not bit-identical")
	}
	if warmStats.BytesRead != int64(8*cold.Rows*cold.Cols) {
		t.Fatalf("warm BytesRead %d, want payload %d", warmStats.BytesRead, 8*cold.Rows*cold.Cols)
	}

	// Rewrite the source (different size and mtime): stale cache must
	// be ignored and rebuilt from the new content.
	if err := os.WriteFile(path, []byte(genCSV(10, 90, 7)), 0o644); err != nil {
		t.Fatal(err)
	}
	future := time.Now().Add(2 * time.Second)
	if err := os.Chtimes(path, future, future); err != nil {
		t.Fatal(err)
	}
	fresh, freshStats, err := l().Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if freshStats.CacheHit {
		t.Fatal("stale cache was served")
	}
	want := mustRead(t, csvio.NewNaiveReader(), path)
	if !fresh.Equal(want) {
		t.Fatal("post-invalidation read differs from naive")
	}

	// Flip a payload byte: CRC must reject it and the read re-parses.
	raw, err := os.ReadFile(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	raw[cacheHeaderLen+3] ^= 0x40
	if err := os.WriteFile(cachePath, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	fi, _ := os.Stat(path)
	if _, _, err := readCache(cachePath, fi.Size(), fi.ModTime().UnixNano()); !errors.Is(err, ErrCacheCorrupt) {
		t.Fatalf("corrupted cache read: %v, want ErrCacheCorrupt", err)
	}
	again, againStats, err := l().Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if againStats.CacheHit {
		t.Fatal("corrupt cache was served")
	}
	if !again.Equal(want) {
		t.Fatal("post-corruption read differs from naive")
	}
}

// TestReadCacheStale exercises the identity check directly.
func TestReadCacheStale(t *testing.T) {
	dir := t.TempDir()
	p := filepath.Join(dir, "c.bin")
	m := tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err := writeCache(p, 100, 200, m); err != nil {
		t.Fatal(err)
	}
	if got, _, err := readCache(p, 100, 200); err != nil || !got.Equal(m) {
		t.Fatalf("round trip: %v", err)
	}
	if _, _, err := readCache(p, 101, 200); !errors.Is(err, ErrCacheStale) {
		t.Fatalf("size change: %v, want ErrCacheStale", err)
	}
	if _, _, err := readCache(p, 100, 201); !errors.Is(err, ErrCacheStale) {
		t.Fatalf("mtime change: %v, want ErrCacheStale", err)
	}
}

// TestCacheCoherentAcrossRanks: a multi-rank cold run writes the cache
// once (rank 0, after the exchange), and a warm run hits it on every
// rank with no collectives — so hit and miss can never mix within a
// run.
func TestCacheCoherentAcrossRanks(t *testing.T) {
	path := writeFile(t, genCSV(31, 64, 5))
	cacheDir := t.TempDir()
	want := mustRead(t, csvio.NewNaiveReader(), path)

	for round, wantHit := range []bool{false, true} {
		err := mpi.NewWorld(3).Run(func(c *mpi.Comm) error {
			m, stats, err := (&Loader{Comm: c, Cache: true, CacheDir: cacheDir, DeferExchange: true}).Read(path)
			if err != nil {
				return err
			}
			if stats.CacheHit != wantHit {
				return fmt.Errorf("rank %d round %d: CacheHit=%v, want %v", c.Rank(), round, stats.CacheHit, wantHit)
			}
			if !m.Equal(want) {
				return fmt.Errorf("rank %d round %d: matrix differs", c.Rank(), round)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamingDeliversBlocks: a single-process Open with small
// BlockRows yields multiple blocks whose concatenation equals the
// whole-file read, and the stats arrive after EOF.
func TestStreamingDeliversBlocks(t *testing.T) {
	path := writeFile(t, genCSV(44, 100, 4))
	want := mustRead(t, csvio.NewNaiveReader(), path)

	l := &Loader{BlockRows: 8}
	src, err := l.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	blocks := 0
	rows := 0
	var all []float64
	for {
		blk, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		blocks++
		rows += blk.Rows
		all = append(all, blk.Data...)
	}
	if blocks < 2 {
		t.Fatalf("want multiple blocks from BlockRows=8 over %d rows, got %d", want.Rows, blocks)
	}
	got := tensor.FromSlice(rows, want.Cols, all)
	if !got.Equal(want) {
		t.Fatal("concatenated blocks differ from whole-file read")
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("after EOF: %v", err)
	}
	stats := src.(csvio.StatSource).Stats()
	if stats.Rows != want.Rows || stats.Seconds <= 0 {
		t.Fatalf("stats after EOF: %+v", stats)
	}
}

// TestCloseAbortsProducer: closing a stream mid-drain unblocks the
// producer; subsequent Next reports the closed stream.
func TestCloseAbortsProducer(t *testing.T) {
	path := writeFile(t, genCSV(45, 400, 6))
	l := &Loader{BlockRows: 4, Prefetch: 1}
	src, err := l.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err != nil {
		t.Fatal(err)
	}
	if err := src.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := src.Next(); err == nil || err == io.EOF {
		t.Fatalf("Next after Close: %v, want closed error", err)
	}
}

// TestEmptyFile: a zero-byte file errors like the whole-file engines,
// on one rank and on a world.
func TestEmptyFile(t *testing.T) {
	path := writeFile(t, "")
	if _, _, err := (&Loader{}).Read(path); err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("single-process empty read: %v", err)
	}
	err := mpi.NewWorld(2).Run(func(c *mpi.Comm) error {
		_, _, err := (&Loader{Comm: c}).Read(path)
		if err == nil {
			return fmt.Errorf("rank %d: expected empty-file error", c.Rank())
		}
		if !strings.Contains(err.Error(), "empty") {
			return fmt.Errorf("rank %d: %v", c.Rank(), err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestShardedTimelineEvents: a multi-rank cold read emits one
// load_shard span per rank; a warm read emits cache_hit spans.
func TestShardedTimelineEvents(t *testing.T) {
	path := writeFile(t, genCSV(46, 150, 6))
	cacheDir := t.TempDir()
	clockStart := time.Now()
	clock := func() float64 { return time.Since(clockStart).Seconds() }

	for round, wantEvent := range []string{"load_shard", "cache_hit"} {
		tl := trace.NewTimeline()
		err := mpi.NewWorld(2).Run(func(c *mpi.Comm) error {
			l := &Loader{Comm: c, Cache: true, CacheDir: cacheDir, DeferExchange: true, Timeline: tl, Clock: clock}
			_, _, err := l.Read(path)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		evs := tl.Filter(wantEvent)
		if len(evs) != 2 {
			t.Fatalf("round %d: want 2 %s events, got %d", round, wantEvent, len(evs))
		}
		seen := map[int]bool{}
		for _, e := range evs {
			seen[e.TID] = true
			if e.Cat != "io" {
				t.Errorf("%s event cat %q, want io", wantEvent, e.Cat)
			}
			if b, ok := e.Args["bytes"].(int64); ok && b <= 0 {
				t.Errorf("%s event bytes %d", wantEvent, b)
			}
		}
		if !seen[0] || !seen[1] {
			t.Errorf("round %d: %s events missing a rank: %v", round, wantEvent, seen)
		}
	}
}

// TestRegistryIncludesSharded: linking this package registers the
// engine, and the factory enables the cache by default.
func TestRegistryIncludesSharded(t *testing.T) {
	found := false
	for _, name := range csvio.Engines() {
		if name == EngineName {
			found = true
		}
	}
	if !found {
		t.Fatalf("registry %v does not include %q", csvio.Engines(), EngineName)
	}
	r, err := csvio.ByName(EngineName)
	if err != nil {
		t.Fatal(err)
	}
	dl, ok := r.(*Loader)
	if !ok {
		t.Fatalf("ByName(%q) returned %T", EngineName, r)
	}
	if !dl.Cache {
		t.Error("registry-built sharded loader should default to Cache on")
	}
}
