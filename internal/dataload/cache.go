package dataload

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"candle/internal/tensor"
)

// The binary columnar cache: a parsed CSV is persisted as raw float64
// columns so warm runs skip parsing entirely — the read is one
// sequential I/O pass plus a transpose, no per-cell work. The file is
// sealed with the same 8-byte CRC32+magic footer the checkpoint
// snapshots use, so a torn or bit-flipped cache is detected and
// silently rebuilt rather than silently trained on.
//
// Layout (little-endian payload, big-endian CRC as in checkpoints):
//
//	magic    "CLB1"                   4 bytes
//	reserved zero                     4 bytes (pads the payload to 8-byte alignment)
//	srcSize  int64                    source file size at write time
//	srcMtime int64                    source mtime, UnixNano
//	rows     int64
//	cols     int64
//	payload  rows×cols float64, column-major (columnar)
//	footer   CRC32-C of all preceding bytes (4, big-endian) + "CLB1"
//
// The footer framing mirrors the checkpoint files' (4-byte big-endian
// CRC + 4-byte magic), but the polynomial is Castagnoli rather than
// IEEE: caches are tens of megabytes where checkpoints are kilobytes,
// and CRC32-C has hardware support on amd64 and arm64 — without it
// the warm-read path would spend most of its time checksumming.
//
// The 40-byte header leaves the payload 8-byte aligned in any
// allocator-returned buffer, so on little-endian hosts the float64
// columns are read and written by reinterpreting the bytes in place —
// the warm path is one I/O pass, one CRC pass, and one blocked
// transpose, with no per-element decode loop.
//
// Invalidation is by source identity: a cache whose recorded size or
// mtime differs from the current source stat is stale. There is no
// TTL — a CSV that has not changed parses to the same matrix forever.

const (
	cacheMagic     = "CLB1"
	cacheHeaderLen = 4 + 4 + 8 + 8 + 8 + 8
	cacheFooterLen = 8
)

// hostLittleEndian reports whether float64 bits laid out in native
// order match the cache's little-endian payload; true on every
// platform this repo targets (amd64, arm64), but the decode keeps an
// explicit byte-order fallback so the format stays portable.
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// payloadFloats reinterprets an 8-byte-aligned little-endian payload
// as n float64s without copying. It returns nil when the host byte
// order or the slice alignment rules it out, and the caller falls
// back to element-wise decoding.
func payloadFloats(b []byte, n int) []float64 {
	if !hostLittleEndian || n == 0 || uintptr(unsafe.Pointer(&b[0]))%8 != 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), n)
}

var cacheCRCTable = crc32.MakeTable(crc32.Castagnoli)

// Cache validation errors, distinguishable for tests and diagnostics;
// both are treated as "parse the CSV and rewrite" by the loader.
var (
	ErrCacheStale   = errors.New("dataload: cache stale")
	ErrCacheCorrupt = errors.New("dataload: cache corrupt")
)

// CachePath names the cache file for a source CSV: the source name
// plus ".bin", in dir when non-empty and alongside the source
// otherwise.
func CachePath(src, dir string) string {
	if dir == "" {
		return src + ".bin"
	}
	return filepath.Join(dir, filepath.Base(src)+".bin")
}

// writeCache persists m as a columnar cache for the source described
// by srcSize/srcMtime, writing a temp file and renaming so a torn
// write can never be mistaken for a valid cache.
func writeCache(path string, srcSize, srcMtime int64, m *tensor.Matrix) error {
	buf := make([]byte, cacheHeaderLen+8*len(m.Data)+cacheFooterLen)
	copy(buf, cacheMagic)
	binary.LittleEndian.PutUint64(buf[8:], uint64(srcSize))
	binary.LittleEndian.PutUint64(buf[16:], uint64(srcMtime))
	binary.LittleEndian.PutUint64(buf[24:], uint64(m.Rows))
	binary.LittleEndian.PutUint64(buf[32:], uint64(m.Cols))
	// Columnar payload: column j's rows are contiguous. On a
	// little-endian host the blocked transpose writes straight into
	// the file buffer; elsewhere the transpose result is encoded in
	// one sequential pass — an element-at-a-time At/Set loop here is
	// what the warm-read speedup would otherwise drown in.
	off := cacheHeaderLen
	if view := payloadFloats(buf[off:], len(m.Data)); view != nil {
		tensor.TransposeInto(&tensor.Matrix{Rows: m.Cols, Cols: m.Rows, Data: view}, m)
		off += 8 * len(m.Data)
	} else {
		for _, v := range m.Transpose().Data {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
			off += 8
		}
	}
	binary.BigEndian.PutUint32(buf[off:], crc32.Checksum(buf[:off], cacheCRCTable))
	copy(buf[off+4:], cacheMagic)
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return fmt.Errorf("dataload: cache write: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("dataload: cache write: %w", err)
	}
	return nil
}

// readCache loads a cache file and validates it against the current
// source identity. It returns ErrCacheStale when the source changed
// and ErrCacheCorrupt when the file fails structural or CRC checks;
// a missing cache surfaces as an fs.ErrNotExist.
func readCache(path string, srcSize, srcMtime int64) (*tensor.Matrix, int64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, err
	}
	if len(raw) < cacheHeaderLen+cacheFooterLen ||
		string(raw[:4]) != cacheMagic ||
		string(raw[len(raw)-4:]) != cacheMagic {
		return nil, 0, fmt.Errorf("%w: %s: bad frame", ErrCacheCorrupt, path)
	}
	body := raw[:len(raw)-cacheFooterLen]
	want := binary.BigEndian.Uint32(raw[len(raw)-cacheFooterLen:])
	if got := crc32.Checksum(body, cacheCRCTable); got != want {
		return nil, 0, fmt.Errorf("%w: %s: crc %08x, footer says %08x", ErrCacheCorrupt, path, got, want)
	}
	gotSize := int64(binary.LittleEndian.Uint64(raw[8:]))
	gotMtime := int64(binary.LittleEndian.Uint64(raw[16:]))
	if gotSize != srcSize || gotMtime != srcMtime {
		return nil, 0, fmt.Errorf("%w: %s: source was %d bytes @%d, cache recorded %d bytes @%d",
			ErrCacheStale, path, srcSize, srcMtime, gotSize, gotMtime)
	}
	rows := int(binary.LittleEndian.Uint64(raw[24:]))
	cols := int(binary.LittleEndian.Uint64(raw[32:]))
	// Validate the dims against the payload with division, never with
	// 8*rows*cols: the header fields are attacker-controlled bytes, and
	// a product of two huge values can wrap around to match the payload
	// length, sending absurd dims into the allocator below.
	n := (len(body) - cacheHeaderLen) / 8
	if rows <= 0 || cols <= 0 || (len(body)-cacheHeaderLen)%8 != 0 ||
		n/rows != cols || n%rows != 0 {
		return nil, 0, fmt.Errorf("%w: %s: %dx%d does not match %d payload bytes",
			ErrCacheCorrupt, path, rows, cols, len(body)-cacheHeaderLen)
	}
	// The columnar payload is, read row-major, a cols x rows matrix.
	// On a little-endian host the blocked transpose reads the file
	// bytes in place — no decode pass, no intermediate matrix; the
	// fallback decodes sequentially first.
	out := tensor.New(rows, cols)
	if view := payloadFloats(body[cacheHeaderLen:], rows*cols); view != nil {
		tensor.TransposeInto(out, &tensor.Matrix{Rows: cols, Cols: rows, Data: view})
	} else {
		tm := tensor.New(cols, rows)
		off := cacheHeaderLen
		for k := range tm.Data {
			tm.Data[k] = math.Float64frombits(binary.LittleEndian.Uint64(raw[off:]))
			off += 8
		}
		tensor.TransposeInto(out, tm)
	}
	return out, int64(len(body) - cacheHeaderLen), nil
}
