// Package dataload is the streaming sharded data pipeline: each MPI
// rank parses only its own byte-range shard of the CSV, parsed row
// blocks flow through a bounded channel so the load overlaps whatever
// the consumer does next (model build, test-set read), and a binary
// columnar cache makes warm reruns skip parsing entirely.
//
// The paper's phase analysis shows data loading dominating short
// CANDLE runs — every rank re-parsed the whole training file. The
// sharded loader divides that work: with n ranks each parses ~1/n of
// the bytes, then the shards are exchanged with the same collectives
// training already uses (a column-count broadcast from rank 0, an
// allgather of shard sizes, an allgather of padded shard payloads).
//
// Collective discipline: mpi.Comm requires every rank to issue the
// same collectives in the same order, and a Comm is not safe for
// concurrent use from two goroutines. The background producer
// therefore never touches the communicator when DeferExchange is set —
// it parses its shard purely locally, and all collectives run on the
// consumer's goroutine when the stream is drained. The runner uses
// this mode so a prefetching train-file load can be in flight while
// the rank reads its test file.
package dataload

import (
	"bufio"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"candle/internal/csvio"
	"candle/internal/mpi"
	"candle/internal/tensor"
	"candle/internal/trace"
)

// EngineName is the name the loader registers in the csvio engine
// registry.
const EngineName = "sharded"

// Defaults for the streaming knobs; zero values on Loader mean these.
const (
	DefaultBlockRows = 2048
	DefaultPrefetch  = 4
)

func init() {
	csvio.RegisterEngine(EngineName, func() csvio.Reader { return &Loader{Cache: true} })
}

// Loader is the sharded streaming engine. The zero value is a valid
// single-process reader; the runner configures Comm and DeferExchange
// per rank. It implements csvio.Reader and csvio.Streamer.
type Loader struct {
	// Comm is the communicator whose ranks co-read the file. Nil means
	// single-process: one shard, no collectives.
	Comm *mpi.Comm

	// Cache enables the binary columnar cache. On a miss, rank 0 (or
	// the sole process) writes the cache after a successful read; on a
	// hit every rank reads the cache instead of parsing.
	Cache bool

	// CacheDir overrides where cache files live; empty means alongside
	// the source CSV.
	CacheDir string

	// BlockRows is the streaming granularity (rows per block);
	// 0 means DefaultBlockRows.
	BlockRows int

	// Prefetch is the bounded-channel depth between the parsing
	// producer and the consumer; 0 means DefaultPrefetch.
	Prefetch int

	// DeferExchange moves all collectives (schema broadcast, shard
	// allgathers) from the producer goroutine to the consumer's, at
	// drain time. Required whenever the caller overlaps an Open stream
	// with other collective-issuing work on the same goroutine.
	DeferExchange bool

	// Timeline, when set, receives load_shard / cache_hit spans;
	// Clock supplies their timestamps (seconds, run-relative).
	Timeline *trace.Timeline
	Clock    func() float64
}

func (l *Loader) Name() string { return "sharded streaming (binary cache)" }

func (l *Loader) rank() int {
	if l.Comm == nil {
		return 0
	}
	return l.Comm.Rank()
}

func (l *Loader) world() int {
	if l.Comm == nil {
		return 1
	}
	return l.Comm.Size()
}

func (l *Loader) clock() float64 {
	if l.Clock != nil {
		return l.Clock()
	}
	return time.Since(processStart).Seconds()
}

var processStart = time.Now()

// Read parses path and returns the full matrix — Open + Collect, so
// the Loader drops into any call site written against csvio.Reader.
func (l *Loader) Read(path string) (*tensor.Matrix, *csvio.ReadStats, error) {
	src, err := l.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer src.Close()
	return csvio.Collect(src)
}

// Open starts the shard parse on a background goroutine and returns
// the stream. With DeferExchange (or a nil Comm) the producer is
// purely local; otherwise the producer issues the collectives itself,
// which is only safe when no other collective can interleave on this
// rank before the stream is drained.
func (l *Loader) Open(path string) (csvio.ChunkSource, error) {
	fi, err := os.Stat(path)
	if err != nil {
		return nil, fmt.Errorf("csvio: %w", err)
	}
	prefetch := l.Prefetch
	if prefetch <= 0 {
		prefetch = DefaultPrefetch
	}
	s := &source{
		l:      l,
		path:   path,
		rank:   l.rank(),
		world:  l.world(),
		size:   fi.Size(),
		mtime:  fi.ModTime().UnixNano(),
		gz:     strings.HasSuffix(path, ".gz"),
		blocks: make(chan *tensor.Matrix, prefetch),
		done:   make(chan struct{}),
		t0:     time.Now(),
	}
	go s.produce()
	return s, nil
}

// source is one in-flight read. The producer goroutine owns the p*
// fields until it closes blocks; the consumer goroutine owns the c*
// fields. The channel close is the happens-before edge that hands the
// producer's results to the consumer.
type source struct {
	l           *Loader
	path        string
	rank, world int
	size, mtime int64
	gz          bool

	blocks    chan *tensor.Matrix
	done      chan struct{} // closed by Close; aborts a blocked producer
	closeOnce sync.Once
	t0        time.Time

	// Producer-owned until close(blocks).
	pData      []float64 // this rank's contiguous shard rows
	pRows      int
	pCols      int
	pFull      *tensor.Matrix // whole matrix, when producer assembled it
	pErr       error
	pExchanged bool // collectives already issued by the producer
	stats      csvio.ReadStats

	// Consumer-owned.
	cFinal bool
	cEOF   bool
	cErr   error
}

var errClosed = fmt.Errorf("csvio: stream closed")

// produce runs on the background goroutine: cache probe, shard parse,
// and — only when the loader is not in deferred-exchange mode — the
// cross-rank exchange.
func (s *source) produce() {
	defer close(s.blocks)
	l := s.l

	if l.Cache {
		if m, payload, err := readCache(CachePath(s.path, l.CacheDir), s.size, s.mtime); err == nil {
			start := l.clock()
			s.pFull = m
			s.stats = csvio.ReadStats{
				BytesRead: payload,
				Rows:      m.Rows,
				Cols:      m.Cols,
				Chunks:    1,
				CacheHit:  true,
			}
			if l.Timeline != nil {
				l.Timeline.Add(trace.Event{
					Name: "cache_hit", Cat: "io", PID: 0, TID: s.rank,
					Start: start, Dur: l.clock() - start,
					Args: map[string]any{"path": s.path, "bytes": payload},
				})
			}
			return
		}
	}

	start := l.clock()
	p := &sectionParser{}
	shardOff, err := s.parseShard(p)
	if err != nil {
		s.pErr = err
		return
	}
	s.pData, s.pRows, s.pCols = p.data, p.rows, p.cols
	s.stats.BytesRead = p.bytes
	s.stats.Rows, s.stats.Cols = p.rows, p.cols
	s.stats.Chunks = s.world
	s.stats.InferencePasses = 1
	if l.Timeline != nil {
		l.Timeline.Add(trace.Event{
			Name: "load_shard", Cat: "io", PID: 0, TID: s.rank,
			Start: start, Dur: l.clock() - start,
			Args: map[string]any{
				"path": s.path, "shard_offset": shardOff,
				"bytes": p.bytes, "rows": p.rows,
			},
		})
	}
	if s.world > 1 && !s.gz && !l.DeferExchange {
		s.pFull, s.pErr = s.exchange(false)
		s.pExchanged = true
	}
}

// parseShard parses this rank's byte range (or, for gzip and
// single-process reads, the whole file), streaming blocks to the
// consumer when the parse alone yields the final row set. It returns
// the shard's starting byte offset.
func (s *source) parseShard(p *sectionParser) (int64, error) {
	l := s.l
	blockRows := l.BlockRows
	if blockRows <= 0 {
		blockRows = DefaultBlockRows
	}
	// Blocks can stream straight to the consumer only when this rank's
	// parse produces the final rows — single process, or the gzip
	// fallback where every rank reads everything. A sharded parse must
	// wait for the exchange.
	streaming := s.world == 1 || s.gz
	onBlock := func(lo, hi int) error {
		if !streaming {
			return nil
		}
		blk := tensor.FromSlice(hi-lo, p.cols, p.data[lo*p.cols:hi*p.cols])
		select {
		case s.blocks <- blk:
			return nil
		case <-s.done:
			return errClosed
		}
	}

	if s.gz {
		// Gzip streams have no byte-addressable line starts, so the
		// shard-by-range plan degrades to every rank decompressing and
		// parsing the whole file serially — made explicit in the stats,
		// mirroring ParallelReader's fallback.
		s.stats.SerialFallback = true
		f, err := os.Open(s.path)
		if err != nil {
			return 0, fmt.Errorf("csvio: %w", err)
		}
		defer f.Close()
		zr, err := gzip.NewReader(f)
		if err != nil {
			return 0, fmt.Errorf("csvio: %s: %w", s.path, err)
		}
		defer zr.Close()
		if err := p.consume(zr, blockRows, onBlock); err != nil {
			if err == errClosed {
				return 0, err
			}
			return 0, p.errAt(s.path, EngineName, 0, err)
		}
		return 0, nil
	}

	f, err := os.Open(s.path)
	if err != nil {
		return 0, fmt.Errorf("csvio: %w", err)
	}
	defer f.Close()
	lo, err := shardStart(f, s.size, s.rank, s.world)
	if err != nil {
		return 0, err
	}
	hi, err := shardStart(f, s.size, s.rank+1, s.world)
	if err != nil {
		return 0, err
	}

	// Schema handshake, non-deferred mode: rank 0 parses its first row
	// and broadcasts the column count before anyone parses in bulk, so
	// every shard enforces the schema as it goes and a ragged row fails
	// fast with its exact line. In deferred mode this broadcast happens
	// at exchange time instead, on the consumer goroutine.
	if s.world > 1 && !l.DeferExchange {
		wantCols, err := s.handshake(f, hi)
		if err != nil {
			return lo, err
		}
		p.wantCols = wantCols
	}

	if err := p.consume(io.NewSectionReader(f, lo, hi-lo), blockRows, onBlock); err != nil {
		if err == errClosed {
			return lo, err
		}
		return lo, p.errAt(s.path, EngineName, lo, err)
	}
	return lo, nil
}

// handshake broadcasts rank 0's column count. Rank 0 scans its shard
// for the first non-blank line and parses it; a malformed first line
// surfaces here, before the broadcast, and aborts the world.
func (s *source) handshake(f *os.File, rank0End int64) (int, error) {
	hdr := []float64{0}
	if s.rank == 0 {
		probe := &sectionParser{}
		if err := probe.consumeFirstRow(io.NewSectionReader(f, 0, rank0End)); err != nil {
			return 0, probe.errAt(s.path, EngineName, 0, err)
		}
		hdr[0] = float64(probe.cols)
	}
	if err := s.l.Comm.Broadcast(0, hdr); err != nil {
		return 0, err
	}
	return int(hdr[0]), nil
}

// exchange runs the collective phase: schema broadcast (deferred mode
// only), allgather of per-shard row counts, allgather of padded shard
// payloads, then assembly of the full matrix in rank order. Every rank
// executes the identical sequence, so it composes with training's own
// collectives. withBroadcast selects the deferred-mode schema
// handshake.
func (s *source) exchange(withBroadcast bool) (*tensor.Matrix, error) {
	c := s.l.Comm
	refCols := 0
	if withBroadcast {
		hdr := []float64{0}
		if s.rank == 0 && s.pRows > 0 {
			hdr[0] = float64(s.pCols)
		}
		if err := c.Broadcast(0, hdr); err != nil {
			return nil, err
		}
		refCols = int(hdr[0])
	}

	counts, err := c.Allgather([]float64{float64(s.pRows), float64(s.pCols)})
	if err != nil {
		return nil, err
	}
	// Resolve the reference schema: rank 0's broadcast when it had
	// rows, else the first shard that does. Every rank derives the
	// same value from the same gathered counts.
	if refCols == 0 {
		for _, rc := range counts {
			if int(rc[0]) > 0 {
				refCols = int(rc[1])
				break
			}
		}
	}
	maxRows, totalRows := 0, 0
	for r, rc := range counts {
		rows, cols := int(rc[0]), int(rc[1])
		if rows > 0 && cols != refCols {
			// A shard whose rows disagree with the schema: report the
			// first line of that shard, as the partitioned engine does.
			return nil, s.shardSchemaError(r, cols, refCols)
		}
		if rows > maxRows {
			maxRows = rows
		}
		totalRows += rows
	}
	if totalRows == 0 {
		return nil, nil // empty file: Collect turns this into the empty error
	}

	padded := make([]float64, maxRows*refCols)
	copy(padded, s.pData)
	out := make([]float64, s.world*maxRows*refCols)
	if err := c.AllgatherInto(padded, out); err != nil {
		return nil, err
	}
	full := tensor.New(totalRows, refCols)
	off := 0
	for r, rc := range counts {
		n := int(rc[0]) * refCols
		copy(full.Data[off:], out[r*maxRows*refCols:r*maxRows*refCols+n])
		off += n
	}
	s.stats.Rows, s.stats.Cols = totalRows, refCols
	return full, nil
}

// shardSchemaError builds the cross-shard mismatch error every rank
// derives identically from the gathered counts. The offending line is
// the first line of shard r — found lazily, since this is a cold path.
func (s *source) shardSchemaError(r, got, want int) error {
	line := 1
	if f, err := os.Open(s.path); err == nil {
		if off, err := shardStart(f, s.size, r, s.world); err == nil {
			line = countLinesBefore(s.path, off) + 1
		}
		f.Close()
	}
	return &csvio.ParseError{
		Path:   s.path,
		Line:   line,
		Engine: EngineName,
		Err:    fmt.Errorf("ragged row: %d columns, want %d", got, want),
	}
}

// Next hands the consumer the next parsed block. After the producer
// finishes, the first Next runs the deferred exchange (collectives on
// this goroutine) and the cache write-back, then returns the full
// matrix (sharded mode) or io.EOF (streamed mode).
func (s *source) Next() (*tensor.Matrix, error) {
	if s.cErr != nil {
		return nil, s.cErr
	}
	if s.cEOF {
		return nil, io.EOF
	}
	select {
	case <-s.done:
		return nil, errClosed
	default:
	}
	if blk, ok := <-s.blocks; ok {
		return blk, nil
	}
	if s.pErr != nil {
		s.cErr = s.pErr
		return nil, s.cErr
	}
	if !s.cFinal {
		s.cFinal = true
		if err := s.finalize(); err != nil {
			s.cErr = err
			return nil, err
		}
	}
	if s.pFull != nil {
		m := s.pFull
		s.pFull = nil
		s.cEOF = true
		s.stats.Seconds = time.Since(s.t0).Seconds()
		return m, nil
	}
	s.cEOF = true
	s.stats.Seconds = time.Since(s.t0).Seconds()
	return nil, io.EOF
}

// finalize runs once, after the producer closed the channel: the
// deferred collective exchange, then the cache write-back (rank 0
// only, and only after the exchange — so no rank can observe a cache
// hit in a run where another missed).
func (s *source) finalize() error {
	l := s.l
	if s.stats.CacheHit {
		return nil
	}
	if s.world > 1 && !s.gz && !s.pExchanged {
		full, err := s.exchange(true)
		if err != nil {
			return err
		}
		s.pFull = full
		s.pExchanged = true
	}
	if l.Cache && s.rank == 0 {
		m := s.pFull
		if m == nil && s.pRows > 0 {
			m = tensor.FromSlice(s.pRows, s.pCols, s.pData)
		}
		if m != nil {
			// Best effort: a failed cache write costs the next run a
			// parse, nothing more.
			_ = writeCache(CachePath(s.path, l.CacheDir), s.size, s.mtime, m)
		}
	}
	return nil
}

// Stats reports what the stream did; complete once Next has returned
// io.EOF (csvio.StatSource).
func (s *source) Stats() *csvio.ReadStats { return &s.stats }

// Close aborts an in-flight parse and releases the stream. Safe to
// call whether or not the stream was drained.
func (s *source) Close() error {
	s.closeOnce.Do(func() { close(s.done) })
	return nil
}

// consumeFirstRow parses lines until the first non-blank row sets the
// column count — the rank-0 side of the schema handshake.
func (p *sectionParser) consumeFirstRow(r io.Reader) error {
	br := bufio.NewReaderSize(r, 64<<10)
	for {
		line, err := br.ReadBytes('\n')
		if len(line) > 0 {
			line = bytes.TrimSuffix(line, []byte{'\n'})
			if perr := p.addLine(line); perr != nil {
				return perr
			}
			if p.rows > 0 {
				return nil
			}
		}
		if err == io.EOF {
			return nil // empty shard: cols stays 0, schema unenforced
		}
		if err != nil {
			return err
		}
	}
}
