package dataload

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"runtime"
	"testing"
	"time"

	"candle/internal/csvio"
	"candle/internal/mpi"
	"candle/internal/tensor"
)

// The load benchmark asks the paper's Table 3/4 question of this
// repo's own pipeline: what does phase 1 cost when every rank parses
// the whole file (the dask-like parallel reader, the best of the three
// paper engines) versus when each rank parses only its byte-range
// shard and the shards are exchanged with collectives — and what does
// the binary columnar cache make of a warm rerun?
//
// On this single-core container there is no parsing parallelism to
// win; the sharded gain is pure work reduction (4 ranks x 1/4 of the
// bytes instead of 4 x all of them, plus one exchange), which is also
// the dominant term on a real multi-node run where ranks do not share
// a parser.

const (
	benchRounds = 3 // measured rounds per mode; best is reported
	benchRanks  = 4
)

// benchCSV writes a rows x cols CSV of full-precision float cells
// (shortest round-trippable form, ~18 characters each — the shape of
// real expression matrices, which carry unquantized floats),
// deterministic in seed.
func benchCSV(tb testing.TB, dir string, rows, cols int) string {
	tb.Helper()
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	path := filepath.Join(dir, "bench.csv")
	if err := csvio.WriteCSV(path, m); err != nil {
		tb.Fatal(err)
	}
	return path
}

// timeWorldLoad runs fn once per rank on a fresh world and returns the
// wall seconds of the slowest-rank completion (world.Run waits for
// all), best of `rounds`; prepare runs before each round, outside the
// timed region.
func timeWorldLoad(tb testing.TB, rounds int, prepare func(), fn func(c *mpi.Comm) error) float64 {
	tb.Helper()
	best := math.Inf(1)
	for i := 0; i < rounds; i++ {
		if prepare != nil {
			prepare()
		}
		start := time.Now()
		if err := mpi.NewWorld(benchRanks).Run(fn); err != nil {
			tb.Fatal(err)
		}
		if s := time.Since(start).Seconds(); s < best {
			best = s
		}
	}
	return best
}

// TestWriteLoadBench regenerates BENCH_load.json when BENCH_LOAD_OUT
// names the destination (see `make bench-load`). BENCH_LOAD_SMOKE=1
// shrinks the dataset and skips the speedup thresholds — the CI
// configuration, which checks the harness end to end without timing
// sensitivity.
func TestWriteLoadBench(t *testing.T) {
	out := os.Getenv("BENCH_LOAD_OUT")
	if out == "" {
		t.Skip("set BENCH_LOAD_OUT to write the benchmark file")
	}
	smoke := os.Getenv("BENCH_LOAD_SMOKE") != ""
	rows, cols := 12000, 400 // ~42 MB
	if smoke {
		rows, cols = 600, 40
	}
	dir := t.TempDir()
	path := benchCSV(t, dir, rows, cols)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	cacheDir := filepath.Join(dir, "cache")
	if err := os.Mkdir(cacheDir, 0o755); err != nil {
		t.Fatal(err)
	}
	clearCache := func() {
		if err := os.RemoveAll(cacheDir); err != nil {
			t.Fatal(err)
		}
		if err := os.Mkdir(cacheDir, 0o755); err != nil {
			t.Fatal(err)
		}
	}

	// Baseline: every rank parses the whole file with the best paper
	// engine, as the benchmarks' phase 1 does today.
	tParallel := timeWorldLoad(t, benchRounds, nil, func(c *mpi.Comm) error {
		_, _, err := csvio.NewParallelReader(0).Read(path)
		return err
	})

	// Cold sharded: each rank parses 1/4 of the bytes, one collective
	// exchange, rank 0 writes the cache (included in the timing).
	tCold := timeWorldLoad(t, benchRounds, clearCache, func(c *mpi.Comm) error {
		_, _, err := (&Loader{Comm: c, Cache: true, CacheDir: cacheDir, DeferExchange: true}).Read(path)
		return err
	})

	// Warm: the cache exists; every rank reads columns, no parsing.
	warmPrepare := func() {
		if _, err := os.Stat(CachePath(path, cacheDir)); err != nil {
			// Seed the cache once so every warm round hits.
			if err := mpi.NewWorld(1).Run(func(c *mpi.Comm) error {
				_, _, err := (&Loader{Comm: c, Cache: true, CacheDir: cacheDir}).Read(path)
				return err
			}); err != nil {
				t.Fatal(err)
			}
		}
	}
	tWarm := timeWorldLoad(t, benchRounds, warmPrepare, func(c *mpi.Comm) error {
		_, stats, err := (&Loader{Comm: c, Cache: true, CacheDir: cacheDir, DeferExchange: true}).Read(path)
		if err != nil {
			return err
		}
		if !stats.CacheHit {
			return fmt.Errorf("rank %d: warm round missed the cache", c.Rank())
		}
		return nil
	})

	// Bit-identity across the whole pyramid: naive vs sharded-cold vs
	// cache-served.
	want, _, err := csvio.NewNaiveReader().Read(path)
	if err != nil {
		t.Fatal(err)
	}
	clearCache()
	cold, _, err := (&Loader{Cache: true, CacheDir: cacheDir}).Read(path)
	if err != nil {
		t.Fatal(err)
	}
	warm, warmStats, err := (&Loader{Cache: true, CacheDir: cacheDir}).Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Equal(want) || !warm.Equal(want) || !warmStats.CacheHit {
		t.Fatal("sharded/cache matrices are not bit-identical to naive")
	}

	coldSpeedup := tParallel / tCold
	warmSpeedup := tCold / tWarm
	if !smoke {
		if coldSpeedup < 1.3 {
			t.Errorf("cold sharded is only %.2fx the parallel reader at %d ranks, want >= 1.3x", coldSpeedup, benchRanks)
		}
		if warmSpeedup < 3 {
			t.Errorf("warm cache is only %.2fx cold sharded, want >= 3x", warmSpeedup)
		}
	}

	doc := map[string]any{
		"description": "Phase-1 data loading at 4 in-process MPI ranks over one generated CSV of full-precision float cells (the shape of real expression matrices). Baseline: every rank reads the whole file with the dask-like parallel reader (the best of the paper's three engines) — the all-ranks-parse-everything pattern the CANDLE benchmarks use. Sharded cold: each rank parses only its byte-range shard (boundaries snapped to line starts, rank 0 broadcasts the column schema), the shards are exchanged with an allgather, and rank 0 writes the binary columnar cache — cache write included in the timing. Warm: every rank serves the read from the CRC32-sealed columnar cache, no parsing. All three paths produce bit-identical matrices (asserted). Times are the best of 3 world-wall-clock rounds on this single-core container, so the sharded win is pure per-rank work reduction (1/4 of the bytes each), the term that dominates real multi-node phase-1 too.",
		"environment": map[string]any{
			"cpu":        "single-core container",
			"gomaxprocs": runtime.GOMAXPROCS(0),
			"go":         runtime.Version(),
			"ranks":      benchRanks,
			"rows":       rows,
			"cols":       cols,
			"csv_bytes":  fi.Size(),
			"smoke":      smoke,
		},
		"parallel_reader_s":        round4(tParallel),
		"sharded_cold_s":           round4(tCold),
		"sharded_warm_cache_s":     round4(tWarm),
		"cold_speedup_vs_parallel": round3(coldSpeedup),
		"warm_speedup_vs_cold":     round3(warmSpeedup),
		"regenerate":               "make bench-load",
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("parallel %.4fs, sharded cold %.4fs (%.2fx), warm cache %.4fs (%.2fx over cold) -> %s\n",
		tParallel, tCold, coldSpeedup, tWarm, warmSpeedup, out)
}

func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
func round4(v float64) float64 { return math.Round(v*1e4) / 1e4 }
