package core

import (
	"errors"
	"fmt"

	"candle/internal/hpc"
	"candle/internal/power"
	"candle/internal/report"
	"candle/internal/sim"
	"candle/internal/trace"
)

// Table1 regenerates the benchmark-configuration table.
func Table1() (*report.Table, error) {
	t := report.New("table1", "Epochs, batch size, data samples, and file sizes for the P1 benchmarks",
		"benchmark", "train_MB", "test_MB", "epochs", "batch", "lr", "optimizer", "train_samples", "elems_per_sample_k")
	for _, b := range sim.Benchmarks() {
		lr := report.F(b.LearningRate, 3)
		if b.Name == "P1B1" {
			lr = "none" // Table 1: adam uses its default
		}
		elems := float64(0)
		switch b.Name {
		case "NT3":
			elems = 60.483
		case "P1B1":
			elems = 60.484
		case "P1B2":
			elems = 28.204
		case "P1B3":
			elems = 1.000
		}
		t.AddRow(b.Name, report.I(b.TrainFileMB), report.I(b.TestFileMB),
			report.I(b.DefaultEpochs), report.I(b.DefaultBatch), lr, b.Optimizer,
			report.I(b.TrainSamples), report.F(elems, 3))
	}
	return t, nil
}

// Figure6a regenerates the NT3 strong-scaling performance series.
func Figure6a() (*report.Table, error) {
	t := report.New("fig6a", "Horovod NT3 on Summit: performance vs GPUs",
		"gpus", "tensorflow_s(bs20)", "total_runtime_s(bs20)", "total_runtime_s(bs40)", "data_loading_s")
	for _, n := range SummitGPUs {
		r20, err := mustSummit("NT3", n, 20, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r40, err := mustSummit("NT3", n, 40, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.F(r20.TrainTime, 1), report.F(r20.TotalTime, 1),
			report.F(r40.TotalTime, 1), report.F(r20.LoadTime, 1))
	}
	t.AddNote("paper: data loading dominates total runtime at 48 GPUs or more")
	return t, nil
}

// Figure6b regenerates the NT3 accuracy series for batch sizes 20/40.
func Figure6b() (*report.Table, error) {
	t := report.New("fig6b", "Horovod NT3 on Summit: training accuracy vs GPUs",
		"gpus", "epochs_per_gpu", "accuracy(bs20)", "accuracy(bs40)")
	for _, n := range SummitGPUs {
		r20, err := mustSummit("NT3", n, 20, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r40, err := mustSummit("NT3", n, 40, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.I(r20.EpochsPerRank),
			report.F(r20.Accuracy, 3), report.F(r40.Accuracy, 3))
	}
	t.AddNote("paper: proper epochs per GPU is 8; ≤4 epochs collapses accuracy")
	return t, nil
}

// Table2 regenerates the NT3 time/epoch and average GPU power table.
func Table2() (*report.Table, error) {
	t := report.New("table2", "Time per epoch (s) and average GPU power (W) for Horovod NT3",
		"gpus", "time_per_epoch_s(bs20)", "time_per_epoch_s(bs40)", "avg_gpu_power_W(bs20)", "avg_gpu_power_W(bs40)")
	for _, n := range SummitGPUs {
		r20, err := mustSummit("NT3", n, 20, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r40, err := mustSummit("NT3", n, 40, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.F(r20.TimePerEpoch, 2), report.F(r40.TimePerEpoch, 2),
			report.F(r20.AvgPowerW, 1), report.F(r40.AvgPowerW, 1))
	}
	t.AddNote("paper: ~10 s/epoch on 1 GPU rising to ~22 s on 384 GPUs; larger batch lowers both")
	return t, nil
}

// Figure7a regenerates the per-GPU power trace on 384 GPUs (1 Hz
// nvidia-smi sampling), thinned for tabulation.
func Figure7a() (*report.Table, error) {
	r, err := mustSummit("NT3", 384, 20, sim.LoaderNaive)
	if err != nil {
		return nil, err
	}
	samples := power.Sampler{RateHz: hpc.Summit().PowerSampleHz}.Samples(r.Profile, r.PowerModel)
	t := report.New("fig7a", "NT3 GPU power over time on 384 GPUs (1 Hz samples, every 10th shown)",
		"t_s", "gpu_power_W")
	for i, s := range samples {
		if i%10 == 0 {
			t.AddRow(report.F(s.T, 0), report.F(s.Watts, 1))
		}
	}
	t.AddNote("data loading ≈%.0f s at low power, then broadcast, then high-power training", r.LoadTime)
	return t, nil
}

// Figure7b regenerates the Horovod timeline summary for NT3 on 384
// GPUs. Use TimelineFor to obtain the raw Chrome-trace events.
func Figure7b() (*report.Table, error) {
	tl, r, err := TimelineFor("NT3", 384, sim.Strong, 0, sim.LoaderNaive)
	if err != nil {
		return nil, err
	}
	t := report.New("fig7b", "Horovod timeline for NT3 on 384 GPUs (original loader)",
		"category", "start_s", "end_s", "span_s", "events")
	timelineSummary(t, tl)
	t.AddNote("broadcast overhead %.2f s (paper: ≈43.72 s)", r.BroadcastTime)
	return t, nil
}

// TimelineFor runs a simulated configuration with timeline recording
// and returns the timeline and result.
func TimelineFor(bench string, ranks int, scaling sim.Scaling, epochs int, loader sim.Loader) (*trace.Timeline, *sim.Result, error) {
	b, err := sim.BenchByName(bench)
	if err != nil {
		return nil, nil, err
	}
	tl := trace.NewTimeline()
	r, err := sim.Run(sim.Config{
		Machine: hpc.Summit(), Bench: b, Ranks: ranks, Scaling: scaling,
		Epochs: epochs, Loader: loader, Timeline: tl, TimelineRanks: 8,
	})
	if err != nil {
		return nil, nil, err
	}
	return tl, r, nil
}

// Figure8a regenerates the P1B1 performance series (bs 100/110).
func Figure8a() (*report.Table, error) {
	t := report.New("fig8a", "Horovod P1B1 on Summit: performance vs GPUs",
		"gpus", "tensorflow_s(bs100)", "total_runtime_s(bs100)", "total_runtime_s(bs110)", "data_loading_s")
	// P1B1 requires at least 4 epochs → at most 96 GPUs.
	for _, n := range ranksUpTo(SummitGPUs, 384, 4) {
		r100, err := mustSummit("P1B1", n, 100, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r110, err := mustSummit("P1B1", n, 110, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.F(r100.TrainTime, 1), report.F(r100.TotalTime, 1),
			report.F(r110.TotalTime, 1), report.F(r100.LoadTime, 1))
	}
	t.AddNote("paper: data loading dominates at 24 GPUs or more")
	return t, nil
}

// Figure8b regenerates the P1B1 training-loss series.
func Figure8b() (*report.Table, error) {
	t := report.New("fig8b", "Horovod P1B1 on Summit: training loss vs GPUs",
		"gpus", "epochs_per_gpu", "loss(bs100)", "loss(bs110)")
	for _, n := range ranksUpTo(SummitGPUs, 384, 4) {
		r100, err := mustSummit("P1B1", n, 100, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r110, err := mustSummit("P1B1", n, 110, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.I(r100.EpochsPerRank),
			report.F(r100.Loss, 4), report.F(r110.Loss, 4))
	}
	t.AddNote("paper: the loss increases only slightly for both batch sizes")
	return t, nil
}

// Figure9a regenerates the P1B2 performance series (bs 60/100).
func Figure9a() (*report.Table, error) {
	t := report.New("fig9a", "Horovod P1B2 on Summit: performance vs GPUs",
		"gpus", "tensorflow_s(bs60)", "total_runtime_s(bs60)", "total_runtime_s(bs100)", "data_loading_s")
	for _, n := range SummitGPUs {
		r60, err := mustSummit("P1B2", n, 60, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r100, err := mustSummit("P1B2", n, 100, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.F(r60.TrainTime, 1), report.F(r60.TotalTime, 1),
			report.F(r100.TotalTime, 1), report.F(r60.LoadTime, 1))
	}
	t.AddNote("paper: data loading starts to dominate with increasing GPUs")
	return t, nil
}

// Figure9b regenerates the P1B2 accuracy series.
func Figure9b() (*report.Table, error) {
	t := report.New("fig9b", "Horovod P1B2 on Summit: accuracy vs GPUs",
		"gpus", "epochs_per_gpu", "accuracy(bs60)", "accuracy(bs100)")
	for _, n := range SummitGPUs {
		r60, err := mustSummit("P1B2", n, 60, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		r100, err := mustSummit("P1B2", n, 100, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n), report.I(r60.EpochsPerRank),
			report.F(r60.Accuracy, 3), report.F(r100.Accuracy, 3))
	}
	t.AddNote("paper: accuracy decreases significantly at 96 GPUs or more (≥16 epochs/GPU needed)")
	return t, nil
}

// Figure10a regenerates the P1B3 batch-scaling performance series.
func Figure10a() (*report.Table, error) {
	t := report.New("fig10a", "Horovod P1B3 on Summit: batch-scaling performance",
		"gpus", "batch(linear)", "runtime_s(linear)", "batch(sqrt)", "runtime_s(sqrt)", "batch(cbrt)", "runtime_s(cbrt)")
	for _, n := range SummitGPUs {
		cells := []string{report.I(n)}
		for _, s := range BatchStrategies() {
			batch, err := BatchFor(s, 100, n)
			if err != nil {
				return nil, err
			}
			r, err := run(hpc.Summit(), "P1B3", n, sim.Strong, 1, batch, sim.LoaderNaive)
			switch {
			case errors.Is(err, sim.ErrOutOfMemory):
				cells = append(cells, report.I(batch), "FAILED(OOM)")
			case err != nil:
				return nil, err
			default:
				cells = append(cells, report.I(batch), report.F(r.TotalTime, 1))
			}
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: linear scaling fastest; batch 19,200/38,400 (192/384 GPUs) causes failed execution")
	return t, nil
}

// Figure10b regenerates the P1B3 batch-scaling accuracy series.
func Figure10b() (*report.Table, error) {
	t := report.New("fig10b", "Horovod P1B3 on Summit: batch-scaling accuracy",
		"gpus", "accuracy(linear)", "accuracy(sqrt)", "accuracy(cbrt)")
	for _, n := range SummitGPUs {
		cells := []string{report.I(n)}
		for _, s := range BatchStrategies() {
			batch, err := BatchFor(s, 100, n)
			if err != nil {
				return nil, err
			}
			r, err := run(hpc.Summit(), "P1B3", n, sim.Strong, 1, batch, sim.LoaderNaive)
			switch {
			case errors.Is(err, sim.ErrOutOfMemory):
				cells = append(cells, "FAILED(OOM)")
			case err != nil:
				return nil, err
			default:
				cells = append(cells, report.F(r.Accuracy, 4))
			}
		}
		t.AddRow(cells...)
	}
	t.AddNote("paper: cubic root best; 48 GPUs with batch int(100·48^(1/3))=363 gives 0.6579")
	return t, nil
}

// loadTable regenerates Table 3 (Summit) or Table 4 (Theta).
func loadTable(id string, cal sim.MachineCal) (*report.Table, error) {
	t := report.New(id, "Data loading (s) by method on "+cal.Name,
		"benchmark", "file", "size_MB", "pandas.read_csv(original)", "dask-like", "chunked low_memory=False", "speedup")
	for _, b := range sim.Benchmarks() {
		l, ok := cal.Load[b.Name]
		if !ok {
			return nil, fmt.Errorf("no load calibration for %s", b.Name)
		}
		t.AddRow(b.Name, "training", report.I(b.TrainFileMB),
			report.F(l.NaiveTrain, 2), report.F(l.ParallelTrain, 2), report.F(l.ChunkTrain, 2),
			report.F(l.NaiveTrain/l.ChunkTrain, 1)+"x")
		t.AddRow(b.Name, "testing", report.I(b.TestFileMB),
			report.F(l.NaiveTest, 2), report.F(l.ParallelTest, 2), report.F(l.ChunkTest, 2),
			report.F(l.NaiveTest/l.ChunkTest, 1)+"x")
	}
	t.AddNote("original and chunked columns are the paper's Table values; internal/csvio reproduces the mechanism on real files")
	return t, nil
}

// Table3 regenerates the Summit data-loading comparison.
func Table3() (*report.Table, error) { return loadTable("table3", sim.SummitCal()) }

// Table4 regenerates the Theta data-loading comparison.
func Table4() (*report.Table, error) { return loadTable("table4", sim.ThetaCal()) }

// Figure11 regenerates the NT3 original-vs-optimized study on Summit.
func Figure11() (*report.Table, error) {
	return improvementTable("fig11", "Horovod NT3 on Summit: original vs optimized",
		hpc.Summit(), "NT3", sim.Strong, 0, SummitGPUs)
}

// Table5 regenerates the NT3 power/energy comparison.
func Table5() (*report.Table, error) {
	t := report.New("table5", "GPU power (W) and energy (J) for Horovod NT3 on Summit",
		"gpus", "power_W(orig)", "power_W(opt)", "power_increase", "energy_kJ/GPU(orig)", "energy_kJ/GPU(opt)", "energy_saving")
	for _, n := range SummitGPUs {
		orig, err := mustSummit("NT3", n, 20, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		opt, err := mustSummit("NT3", n, 20, sim.LoaderChunked)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n),
			report.F(orig.AvgPowerW, 1), report.F(opt.AvgPowerW, 1),
			report.Pct(-Improvement(orig.AvgPowerW, opt.AvgPowerW)),
			report.F(orig.EnergyJ/1e3, 2), report.F(opt.EnergyJ/1e3, 2),
			report.Pct(Improvement(orig.EnergyJ, opt.EnergyJ)))
	}
	t.AddNote("paper: optimized power up to +68.77%% (less low-power loading); energy down up to 55.93%%")
	return t, nil
}

// Figure12 regenerates the optimized-broadcast timeline comparison.
func Figure12() (*report.Table, error) {
	_, orig, err := TimelineFor("NT3", 384, sim.Strong, 0, sim.LoaderNaive)
	if err != nil {
		return nil, err
	}
	_, opt, err := TimelineFor("NT3", 384, sim.Strong, 0, sim.LoaderChunked)
	if err != nil {
		return nil, err
	}
	t := report.New("fig12", "Broadcast overhead for NT3 on 384 GPUs, original vs optimized",
		"loader", "broadcast_overhead_s")
	t.AddRow("original", report.F(orig.BroadcastTime, 2))
	t.AddRow("optimized", report.F(opt.BroadcastTime, 2))
	t.AddNote("reduction %.2f%% (paper: 43.72 s → 4.65 s, 89.36%%)",
		Improvement(orig.BroadcastTime, opt.BroadcastTime))
	return t, nil
}

// Figure13 regenerates the NT3 Theta improvement study.
func Figure13() (*report.Table, error) {
	return improvementTable("fig13", "Horovod NT3 on Theta: original vs optimized",
		hpc.Theta(), "NT3", sim.Strong, 0, ThetaNodes)
}

// Figure14 regenerates the P1B1 Summit improvement study.
func Figure14() (*report.Table, error) {
	return improvementTable("fig14", "Horovod P1B1 on Summit: original vs optimized",
		hpc.Summit(), "P1B1", sim.Strong, 0, ranksUpTo(SummitGPUs, 384, 4))
}

// Figure15 regenerates the P1B1 Theta improvement study.
func Figure15() (*report.Table, error) {
	return improvementTable("fig15", "Horovod P1B1 on Theta: original vs optimized",
		hpc.Theta(), "P1B1", sim.Strong, 0, ranksUpTo(ThetaNodes, 384, 4))
}

// Figure16 regenerates the P1B2 Summit improvement study.
func Figure16() (*report.Table, error) {
	return improvementTable("fig16", "Horovod P1B2 on Summit: original vs optimized",
		hpc.Summit(), "P1B2", sim.Strong, 0, SummitGPUs)
}

// Figure17 regenerates the P1B2 Theta improvement study.
func Figure17() (*report.Table, error) {
	return improvementTable("fig17", "Horovod P1B2 on Theta: original vs optimized",
		hpc.Theta(), "P1B2", sim.Strong, 0, ThetaNodes)
}

// Section54 regenerates the P1B3 (cubic-root) improvement study.
func Section54() (*report.Table, error) {
	t := report.New("sec5.4", "Horovod P1B3 on Summit (cubic root): original vs optimized",
		"gpus", "batch", "original_total_s", "optimized_total_s", "improvement")
	maxImp := 0.0
	for _, n := range SummitGPUs {
		batch, err := BatchFor(CubicRoot, 100, n)
		if err != nil {
			return nil, err
		}
		orig, err := run(hpc.Summit(), "P1B3", n, sim.Strong, 1, batch, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		opt, err := run(hpc.Summit(), "P1B3", n, sim.Strong, 1, batch, sim.LoaderChunked)
		if err != nil {
			return nil, err
		}
		imp := Improvement(orig.TotalTime, opt.TotalTime)
		if imp > maxImp {
			maxImp = imp
		}
		t.AddRow(report.I(n), report.I(batch),
			report.F(orig.TotalTime, 1), report.F(opt.TotalTime, 1), report.Pct(imp))
	}
	t.AddNote("max improvement %.2f%% (paper: up to 6.50%%; the P1B3 file format barely benefits)", maxImp)
	return t, nil
}

// Figure18 regenerates the NT3 weak-scaling study (8 epochs/GPU).
func Figure18() (*report.Table, error) {
	return improvementTable("fig18", "Horovod NT3 on Summit, weak scaling (8 epochs/GPU)",
		hpc.Summit(), "NT3", sim.Weak, 8, WeakGPUs)
}

// Figure19 regenerates the weak-scaling timeline on 768 GPUs.
func Figure19() (*report.Table, error) {
	tlOrig, orig, err := TimelineFor("NT3", 768, sim.Weak, 8, sim.LoaderNaive)
	if err != nil {
		return nil, err
	}
	_, opt, err := TimelineFor("NT3", 768, sim.Weak, 8, sim.LoaderChunked)
	if err != nil {
		return nil, err
	}
	t := report.New("fig19", "NT3 weak-scaling timeline on 768 GPUs",
		"loader", "broadcast_overhead_s", "allreduce_pieces")
	pieces := len(tlOrig.Filter("NCCL_allreduce")) / 8 // per shown rank
	t.AddRow("original", report.F(orig.BroadcastTime, 2), report.I(pieces))
	t.AddRow("optimized", report.F(opt.BroadcastTime, 2), report.I(pieces))
	t.AddNote("reduction %.2f%% (paper: 37.65 s → 5.3 s, 85.92%%); 8 communication pieces for 8 epochs",
		Improvement(orig.BroadcastTime, opt.BroadcastTime))
	return t, nil
}

// Table6 regenerates the weak-scaling accuracy/epoch-time/power table.
func Table6() (*report.Table, error) {
	t := report.New("table6", "NT3 weak scaling: accuracy, time/epoch (s), avg GPU power (W)",
		"gpus", "accuracy(orig)", "accuracy(opt)", "time_per_epoch_s(orig)", "time_per_epoch_s(opt)", "power_W(orig)", "power_W(opt)")
	for _, n := range append([]int{1}, WeakGPUs...) {
		orig, err := run(hpc.Summit(), "NT3", n, sim.Weak, 8, 0, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		opt, err := run(hpc.Summit(), "NT3", n, sim.Weak, 8, 0, sim.LoaderChunked)
		if err != nil {
			return nil, err
		}
		t.AddRow(report.I(n),
			report.F(orig.Accuracy, 3), report.F(opt.Accuracy, 3),
			report.F(orig.TimePerEpoch, 2), report.F(opt.TimePerEpoch, 2),
			report.F(orig.AvgPowerW, 1), report.F(opt.AvgPowerW, 1))
	}
	t.AddNote("paper: sequential epoch 10.30 s; >3x larger on 3,072 GPUs from allreduce overhead")
	return t, nil
}

// Figure20 regenerates the P1B1 weak-scaling study.
func Figure20() (*report.Table, error) {
	return improvementTable("fig20", "Horovod P1B1 on Summit, weak scaling (8 epochs/GPU)",
		hpc.Summit(), "P1B1", sim.Weak, 8, WeakGPUs)
}

// Figure21 regenerates the P1B2 weak-scaling study.
func Figure21() (*report.Table, error) {
	return improvementTable("fig21", "Horovod P1B2 on Summit, weak scaling (8 epochs/GPU)",
		hpc.Summit(), "P1B2", sim.Weak, 8, WeakGPUs)
}
