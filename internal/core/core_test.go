package core

import (
	"strconv"
	"strings"
	"testing"

	"candle/internal/sim"
)

func TestBatchFor(t *testing.T) {
	for _, tc := range []struct {
		s       BatchStrategy
		workers int
		want    int
	}{
		{Linear, 48, 4800},
		{Linear, 384, 38400},
		{SquareRoot, 48, 692},
		{CubicRoot, 48, 363}, // paper: int(100·48^(1/3)) = 363
		{CubicRoot, 1, 100},
	} {
		got, err := BatchFor(tc.s, 100, tc.workers)
		if err != nil {
			t.Fatal(err)
		}
		if got != tc.want {
			t.Fatalf("BatchFor(%s, 100, %d) = %d, want %d", tc.s, tc.workers, got, tc.want)
		}
	}
	if _, err := BatchFor("bogus", 100, 4); err == nil {
		t.Fatal("bogus strategy accepted")
	}
}

func TestImprovement(t *testing.T) {
	if Improvement(200, 100) != 50 {
		t.Fatal("improvement math")
	}
	if Improvement(0, 100) != 0 {
		t.Fatal("zero baseline")
	}
}

func TestRegistryCoversEveryPaperArtifact(t *testing.T) {
	want := []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"fig6a", "fig6b", "fig7a", "fig7b", "fig8a", "fig8b", "fig9a", "fig9b",
		"fig10a", "fig10b", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21", "sec5.4",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Fatalf("experiment registry missing %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(IDs()), len(want))
	}
	if _, ok := ByID("fig11"); !ok {
		t.Fatal("ByID lookup failed")
	}
	if _, ok := ByID("fig99"); ok {
		t.Fatal("bogus ID found")
	}
}

func TestAllExperimentsRun(t *testing.T) {
	tables, err := RunAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(Experiments()) {
		t.Fatalf("RunAll returned %d tables", len(tables))
	}
	for _, tb := range tables {
		if len(tb.Rows) == 0 {
			t.Fatalf("%s: empty table", tb.ID)
		}
		if len(tb.Headers) == 0 {
			t.Fatalf("%s: no headers", tb.ID)
		}
		// Render both forms without panicking.
		if tb.String() == "" || tb.CSV() == "" {
			t.Fatalf("%s: empty rendering", tb.ID)
		}
	}
}

// cell parses a table cell as float, failing the test on garbage.
func cell(t *testing.T, s string) float64 {
	t.Helper()
	s = strings.TrimSuffix(strings.TrimSuffix(s, "%"), "x")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("unparsable cell %q", s)
	}
	return v
}

func TestFigure6aLoadingDominatesAt48(t *testing.T) {
	tb, err := Figure6a()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		gpus := cell(t, row[0])
		tf := cell(t, row[1])
		load := cell(t, row[4])
		if gpus >= 48 && load < tf {
			t.Fatalf("at %v GPUs loading %v < tensorflow %v", gpus, load, tf)
		}
	}
}

func TestTable2EpochTimes(t *testing.T) {
	tb, err := Table2()
	if err != nil {
		t.Fatal(err)
	}
	first, last := tb.Rows[0], tb.Rows[len(tb.Rows)-1]
	if e := cell(t, first[1]); e < 9.8 || e > 10.8 {
		t.Fatalf("1-GPU epoch = %v", e)
	}
	if e := cell(t, last[1]); e < 18 || e > 30 {
		t.Fatalf("384-GPU epoch = %v", e)
	}
	// bs40 time per epoch below bs20 everywhere.
	for _, row := range tb.Rows {
		if cell(t, row[2]) >= cell(t, row[1]) {
			t.Fatalf("bs40 epoch not faster: %v", row)
		}
	}
}

func TestTable3SpeedupShapes(t *testing.T) {
	tb, err := Table3()
	if err != nil {
		t.Fatal(err)
	}
	speedups := map[string]float64{}
	for _, row := range tb.Rows {
		if row[1] == "training" {
			speedups[row[0]] = cell(t, row[6])
		}
	}
	if speedups["NT3"] < 5 || speedups["NT3"] > 6.5 {
		t.Fatalf("NT3 speedup %v, want ≈5.7", speedups["NT3"])
	}
	if speedups["P1B1"] < 7 {
		t.Fatalf("P1B1 speedup %v, want >7", speedups["P1B1"])
	}
	if speedups["P1B3"] > 1.2 {
		t.Fatalf("P1B3 speedup %v, want ≈1", speedups["P1B3"])
	}
}

func TestFigure10aLinearFails(t *testing.T) {
	tb, err := Figure10a()
	if err != nil {
		t.Fatal(err)
	}
	failed := 0
	for _, row := range tb.Rows {
		if row[2] == "FAILED(OOM)" {
			failed++
		}
	}
	if failed != 2 {
		t.Fatalf("linear scaling should fail at exactly 192 and 384 GPUs, got %d failures", failed)
	}
}

func TestFigure11MaxImprovementNote(t *testing.T) {
	tb, err := Figure11()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Notes) == 0 || !strings.Contains(tb.Notes[0], "max improvement") {
		t.Fatalf("missing max-improvement note: %v", tb.Notes)
	}
	// Last row (384 GPUs) improvement should be the maximum, 60-80%.
	last := tb.Rows[len(tb.Rows)-1]
	if imp := cell(t, last[3]); imp < 60 || imp > 80 {
		t.Fatalf("384-GPU improvement = %v, want ≈67.68", imp)
	}
}

func TestFigure18WeakScalingDecreasing(t *testing.T) {
	tb, err := Figure18()
	if err != nil {
		t.Fatal(err)
	}
	prev := 1e9
	for _, row := range tb.Rows {
		imp := cell(t, row[3])
		if imp > prev+0.5 {
			t.Fatalf("weak-scaling improvement not decreasing: %v", tb.Rows)
		}
		prev = imp
	}
}

func TestTimelineForProducesEvents(t *testing.T) {
	tl, r, err := TimelineFor("NT3", 384, sim.Strong, 0, sim.LoaderNaive)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("no events")
	}
	if r.BroadcastTime <= 0 {
		t.Fatal("no broadcast overhead")
	}
}

func TestRanksUpTo(t *testing.T) {
	got := ranksUpTo([]int{1, 6, 96, 192, 384}, 384, 4)
	want := []int{1, 6, 96}
	if len(got) != len(want) {
		t.Fatalf("ranksUpTo = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ranksUpTo = %v, want %v", got, want)
		}
	}
}
