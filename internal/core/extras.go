package core

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"

	"candle/internal/advisor"
	"candle/internal/csvio"
	"candle/internal/data"
	"candle/internal/horovod"
	"candle/internal/hpc"
	"candle/internal/mpi"
	"candle/internal/nn"
	"candle/internal/report"
	"candle/internal/sim"
	"candle/internal/tensor"
)

// ExtraExperiments returns drivers for studies beyond the paper's
// figures: the ablations DESIGN.md §7 calls out, rendered as tables.
// They are not part of RunAll (xchunk measures real I/O on the host
// and is therefore not deterministic); candle-sweep exposes them by
// ID.
func ExtraExperiments() []Experiment {
	return []Experiment{
		{"xchunk", "Chunked-reader chunk-size sweep (real I/O on this host)",
			"The paper fixes 16 MB (Spectrum Scale's largest I/O block); this sweeps around it", ExtraChunkSweep},
		{"xps", "Ring allreduce vs parameter server: network load",
			"The gRPC/PS baseline concentrates O(N·M) bytes on one endpoint; the ring spreads O(M) per rank", ExtraPSvsRing},
		{"xfusion", "Horovod tensor fusion: collectives per step",
			"Fusion batches small tensors into one allreduce", ExtraFusion},
		{"xadvisor", "Model-driven run recommendations",
			"Min-time and min-energy plans per benchmark at the paper's accuracy levels", ExtraAdvisor},
		{"xdes", "Synchronous straggler amplification (event-driven sim)",
			"Per-rank compute jitter stretches every allreduce step to the slowest rank's pace", ExtraStragglers},
		{"xload", "Tables 3/4 in miniature: real files, real engines, this host",
			"Wide RNA-seq-shaped files gain several × from the chunked engine; narrow integer P1B3-shaped files ≈1×", ExtraLoadersReal},
	}
}

// AllExperimentIDs returns paper + extra experiment IDs.
func AllExperimentIDs() []string {
	ids := IDs()
	for _, e := range ExtraExperiments() {
		ids = append(ids, e.ID)
	}
	return ids
}

// ByIDAll looks up paper experiments first, then extras.
func ByIDAll(id string) (Experiment, bool) {
	if e, ok := ByID(id); ok {
		return e, true
	}
	for _, e := range ExtraExperiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// ExtraChunkSweep measures the chunked reader across chunk sizes on a
// generated wide CSV (host-dependent wall times).
func ExtraChunkSweep() (*report.Table, error) {
	dir, err := os.MkdirTemp("", "candle-chunk-")
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer os.RemoveAll(dir)
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(64, 6000)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 100
	}
	path := filepath.Join(dir, "wide.csv")
	if err := csvio.WriteCSV(path, m); err != nil {
		return nil, err
	}
	t := report.New("xchunk", "Chunk-size sweep for the optimized reader (wide file, this host)",
		"chunk", "seconds", "chunks_read")
	for _, tc := range []struct {
		label string
		bytes int
	}{
		{"64KB", 64 << 10}, {"256KB", 256 << 10}, {"1MB", 1 << 20},
		{"4MB", 4 << 20}, {"16MB (paper)", 16 << 20}, {"64MB", 64 << 20},
	} {
		r := &csvio.ChunkedReader{ChunkBytes: tc.bytes}
		// Warm, then best of three.
		if _, _, err := r.Read(path); err != nil {
			return nil, err
		}
		best := 0.0
		chunks := 0
		for rep := 0; rep < 3; rep++ {
			_, stats, err := r.Read(path)
			if err != nil {
				return nil, err
			}
			if best == 0 || stats.Seconds < best {
				best = stats.Seconds
				chunks = stats.Chunks
			}
		}
		t.AddRow(tc.label, report.F(best, 4), report.I(chunks))
	}
	t.AddNote("wall-clock on this host; the paper's 16 MB matches Spectrum Scale's max I/O block")
	return t, nil
}

// ExtraPSvsRing compares per-step traffic of the two distribution
// strategies on the real in-process implementations (deterministic).
func ExtraPSvsRing() (*report.Table, error) {
	t := report.New("xps", "Ring allreduce vs parameter server, one optimizer step",
		"ranks", "strategy", "total_MB", "hotspot_MB", "hotspot_share")
	const elems = 1 << 20 // 8 MB of gradients
	for _, ranks := range []int{2, 4, 8} {
		for _, strategy := range []string{"ring", "paramserver"} {
			w := mpi.NewWorld(ranks)
			err := w.Run(func(c *mpi.Comm) error {
				h := horovod.Init(c, horovod.Options{})
				var opt nn.Optimizer
				if strategy == "ring" {
					opt = h.DistributedOptimizer(nn.NewSGD(0.1))
				} else {
					opt = h.ParameterServerOptimizer(nn.NewSGD(0.1))
				}
				p := &nn.Param{Name: "g", Value: tensor.New(1, elems), Grad: tensor.New(1, elems)}
				opt.Step([]*nn.Param{p})
				return nil
			})
			if err != nil {
				return nil, err
			}
			total := float64(w.BytesSent()) / 1e6
			hot := float64(w.MaxEndpointBytes()) / 1e6
			share := 0.0
			if total > 0 {
				// Every payload byte touches exactly two endpoints, so
				// hot == total means one endpoint sees all traffic.
				share = hot / total * 100
			}
			t.AddRow(report.I(ranks), strategy,
				report.F(total, 1), report.F(hot, 1), report.Pct(share))
		}
	}
	t.AddNote("the PS server touches 100%% of all traffic at any scale; the ring's busiest endpoint falls as ~2/N")
	return t, nil
}

// ExtraFusion counts collectives per optimizer step with fusion on and
// off for a many-tensor model (deterministic).
func ExtraFusion() (*report.Table, error) {
	t := report.New("xfusion", "Horovod tensor fusion: collectives per optimizer step",
		"tensors", "fusion", "allreduce_calls")
	for _, tensors := range []int{4, 16, 64} {
		for _, fusion := range []bool{true, false} {
			w := mpi.NewWorld(2)
			calls := 0
			err := w.Run(func(c *mpi.Comm) error {
				fb := 0 // default 64 MB
				if !fusion {
					fb = -1
				}
				h := horovod.Init(c, horovod.Options{FusionBytes: fb})
				d := h.DistributedOptimizer(nn.NewSGD(0.1))
				params := make([]*nn.Param, tensors)
				for i := range params {
					params[i] = &nn.Param{
						Name:  fmt.Sprintf("t%d", i),
						Value: tensor.New(8, 8),
						Grad:  tensor.New(8, 8),
					}
				}
				d.Step(params)
				if c.Rank() == 0 {
					calls = d.AllreduceCalls
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			label := "on (64MB)"
			if !fusion {
				label = "off"
			}
			t.AddRow(report.I(tensors), label, report.I(calls))
		}
	}
	t.AddNote("fusion keeps one collective per step regardless of tensor count")
	return t, nil
}

// ExtraStragglers sweeps per-rank compute jitter through the
// event-driven simulator and reports the synchronous-training penalty
// — a what-if the paper's closed-form reasoning cannot express.
func ExtraStragglers() (*report.Table, error) {
	nt3, err := sim.BenchByName("NT3")
	if err != nil {
		return nil, err
	}
	t := report.New("xdes", "Straggler amplification for NT3 on 48 Summit GPUs (8 epochs each)",
		"compute_jitter", "train_s", "penalty_s", "total_s")
	cfg := sim.Config{Machine: hpc.Summit(), Bench: nt3, Ranks: 48,
		Scaling: sim.Strong, Loader: sim.LoaderChunked}
	for _, j := range []float64{0, 0.02, 0.05, 0.10, 0.20} {
		r, err := sim.RunDES(cfg, sim.DESOptions{ComputeJitter: j})
		if err != nil {
			return nil, err
		}
		t.AddRow(report.Pct(j*100), report.F(r.TrainTime, 1),
			report.F(r.StragglerPenalty, 1), report.F(r.TotalTime, 1))
	}
	t.AddNote("with jitter 0 the event-driven run reproduces the closed-form model exactly")
	return t, nil
}

// ExtraLoadersReal is a miniature of Tables 3/4 measured for real on
// this host: moderate-size streamed files with the two contrasting
// shapes (wide floats vs narrow integers), timed through all three
// engines.
func ExtraLoadersReal() (*report.Table, error) {
	dir, err := os.MkdirTemp("", "candle-xload-")
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	defer os.RemoveAll(dir)

	wideSpec := data.NT3()
	wideSpec = wideSpec.Scaled(18, 1) // full 60,483-column rows, few of them
	widePath := filepath.Join(dir, "wide.csv")
	wideBytes, err := data.WriteSyntheticCSV(wideSpec, widePath, wideSpec.TrainSamples, 1)
	if err != nil {
		return nil, err
	}
	narrowSpec := data.P1B3().Scaled(100, 1) // full 1,000-column rows, many of them
	narrowPath := filepath.Join(dir, "narrow.csv")
	narrowBytes, err := data.WriteSyntheticCSV(narrowSpec, narrowPath, narrowSpec.TrainSamples, 1)
	if err != nil {
		return nil, err
	}

	t := report.New("xload", "Real data-loading comparison on this host (streamed synthetic files)",
		"file", "size_MB", "engine", "seconds", "speedup_vs_original")
	for _, f := range []struct {
		label string
		path  string
		bytes int64
	}{
		{"NT3-shaped (wide floats)", widePath, wideBytes},
		{"P1B3-shaped (narrow ints)", narrowPath, narrowBytes},
	} {
		baseline := 0.0
		for _, r := range csvio.Readers() {
			if _, _, err := r.Read(f.path); err != nil { // warm the cache
				return nil, err
			}
			best := 0.0
			for rep := 0; rep < 3; rep++ {
				_, stats, err := r.Read(f.path)
				if err != nil {
					return nil, err
				}
				if best == 0 || stats.Seconds < best {
					best = stats.Seconds
				}
			}
			speed := "1.0x"
			if baseline == 0 {
				baseline = best
			} else if best > 0 {
				speed = report.F(baseline/best, 1) + "x"
			}
			t.AddRow(f.label, report.F(float64(f.bytes)/1e6, 1), r.Name(),
				report.F(best, 3), speed)
		}
	}
	t.AddNote("paper Tables 3/4: wide files gain ~4–7x from chunked low_memory=False, narrow P1B3-style ~1x")
	return t, nil
}

// ExtraAdvisor tabulates the model-driven recommendations for each
// benchmark (deterministic; uses the calibrated simulator).
func ExtraAdvisor() (*report.Table, error) {
	t := report.New("xadvisor", "Model-driven run plans (Summit, chunked loader expected)",
		"benchmark", "objective", "constraint", "workers", "batch", "loader", "time_s", "energy_MJ")
	for _, tc := range []struct {
		bench     string
		objective advisor.Objective
		minAcc    float64
		note      string
	}{
		{"NT3", advisor.MinTime, 0.99, "acc ≥ 0.99"},
		{"NT3", advisor.MinEnergy, 0.99, "acc ≥ 0.99"},
		{"P1B2", advisor.MinTime, 0.85, "acc ≥ 0.85"},
		{"P1B1", advisor.MinTime, 0, "none"},
	} {
		best, _, err := advisor.Recommend(advisor.Request{
			Benchmark: tc.bench, Machine: hpc.Summit(),
			Objective: tc.objective, MinAccuracy: tc.minAcc,
		})
		if err != nil {
			return nil, err
		}
		t.AddRow(tc.bench, tc.objective.String(), tc.note,
			report.I(best.Workers), report.I(best.Batch), best.Loader.String(),
			report.F(best.TimeS, 1), report.F(best.EnergyJ/1e6, 2))
	}
	return t, nil
}
