package core

import (
	"strings"
	"testing"
)

func TestExtraExperimentsRegistered(t *testing.T) {
	extras := ExtraExperiments()
	if len(extras) != 6 {
		t.Fatalf("extras = %d", len(extras))
	}
	ids := AllExperimentIDs()
	if len(ids) != len(Experiments())+6 {
		t.Fatalf("AllExperimentIDs = %d", len(ids))
	}
	if _, ok := ByIDAll("xps"); !ok {
		t.Fatal("xps lookup")
	}
	if _, ok := ByIDAll("fig11"); !ok {
		t.Fatal("paper lookup through ByIDAll")
	}
	if _, ok := ByIDAll("bogus"); ok {
		t.Fatal("bogus lookup")
	}
}

func TestExtraPSvsRingTable(t *testing.T) {
	tb, err := ExtraPSvsRing()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// At 8 ranks the PS hotspot share must be 100% and the ring's 25%.
	for _, row := range tb.Rows {
		if row[0] != "8" {
			continue
		}
		switch row[1] {
		case "paramserver":
			if row[4] != "100.00%" {
				t.Fatalf("PS share = %s", row[4])
			}
		case "ring":
			if cell(t, row[4]) > 30 {
				t.Fatalf("ring share = %s", row[4])
			}
		}
	}
}

func TestExtraFusionTable(t *testing.T) {
	tb, err := ExtraFusion()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		calls := cell(t, row[2])
		if strings.HasPrefix(row[1], "on") && calls != 1 {
			t.Fatalf("fusion on: %v calls for %s tensors", calls, row[0])
		}
		if row[1] == "off" && int(calls) != int(cell(t, row[0])) {
			t.Fatalf("fusion off: %v calls for %s tensors", calls, row[0])
		}
	}
}

func TestExtraAdvisorTable(t *testing.T) {
	tb, err := ExtraAdvisor()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tb.Rows {
		if row[5] != "chunked" {
			t.Fatalf("advisor chose %s loader for %s", row[5], row[0])
		}
	}
}

func TestExtraStragglersTable(t *testing.T) {
	tb, err := ExtraStragglers()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 5 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	if p0 := cell(t, tb.Rows[0][2]); p0 != 0 {
		t.Fatalf("zero-jitter penalty = %v", p0)
	}
	prev := -1.0
	for _, row := range tb.Rows {
		p := cell(t, row[2])
		if p < prev {
			t.Fatalf("penalty not monotone: %v", tb.Rows)
		}
		prev = p
	}
}

func TestExtraChunkSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("real I/O sweep skipped in -short")
	}
	tb, err := ExtraChunkSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(tb.Rows) != 6 {
		t.Fatalf("rows = %d", len(tb.Rows))
	}
	// Chunk counts decrease as chunk size grows.
	prev := 1 << 30
	for _, row := range tb.Rows {
		c := int(cell(t, row[2]))
		if c > prev {
			t.Fatalf("chunk count increased: %v", tb.Rows)
		}
		prev = c
	}
}
