// Package core is the paper's experiment harness: for every table and
// figure in the evaluation (Tables 1–6, Figures 6–21, §5.4), a driver
// that regenerates the same rows or series from this repository's
// models — the scaling strategies of Figure 4, the strong-/weak-
// scaling sweeps, the data-loader comparison, and the
// performance/energy improvement studies.
package core

import (
	"fmt"
	"math"
	"sort"

	"candle/internal/hpc"
	"candle/internal/report"
	"candle/internal/sim"
	"candle/internal/trace"
)

// SummitGPUs is the strong-scaling sweep of Figures 6–17 (1–384 GPUs;
// 64 Summit nodes × 6 GPUs).
var SummitGPUs = []int{1, 6, 12, 24, 48, 96, 192, 384}

// WeakGPUs is the weak-scaling sweep of Figures 18–21 (up to 3,072
// GPUs = 512 nodes).
var WeakGPUs = []int{6, 12, 24, 48, 96, 192, 384, 768, 1536, 3072}

// ThetaNodes is the Theta strong-scaling sweep (up to 384 nodes).
var ThetaNodes = []int{24, 48, 96, 192, 384}

// BatchStrategy names one of the batch-size scaling strategies of
// Figure 4(b).
type BatchStrategy string

// The three strategies the paper evaluates on P1B3.
const (
	Linear     BatchStrategy = "linear"
	SquareRoot BatchStrategy = "sqrt"
	CubicRoot  BatchStrategy = "cbrt"
)

// BatchStrategies lists the strategies in paper order.
func BatchStrategies() []BatchStrategy { return []BatchStrategy{Linear, SquareRoot, CubicRoot} }

// BatchFor applies a strategy to the base batch size for the given
// worker count: linear = B×N, square root = int(B×√N), cubic root =
// int(B×∛N).
func BatchFor(s BatchStrategy, base, workers int) (int, error) {
	switch s {
	case Linear:
		return base * workers, nil
	case SquareRoot:
		return int(float64(base) * math.Sqrt(float64(workers))), nil
	case CubicRoot:
		return int(float64(base) * math.Cbrt(float64(workers))), nil
	default:
		return 0, fmt.Errorf("core: unknown batch strategy %q", s)
	}
}

// Improvement returns the paper's performance-improvement percentage:
// (orig − opt) / orig × 100.
func Improvement(orig, opt float64) float64 {
	if orig == 0 {
		return 0
	}
	return (orig - opt) / orig * 100
}

// Experiment is one regenerable table or figure.
type Experiment struct {
	// ID matches the paper artifact: "table1".."table6",
	// "fig6a".."fig21", "sec5.4".
	ID    string
	Title string
	// Paper summarizes what the paper reports, for EXPERIMENTS.md.
	Paper string
	Run   func() (*report.Table, error)
}

// Experiments returns every driver, in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Benchmark configurations", "Epochs, batch size, LR, optimizer, samples, file sizes for the P1 benchmarks", Table1},
		{"fig6a", "Horovod NT3 performance on Summit (strong scaling)", "TensorFlow time, total runtime (bs 40), data loading vs 1-384 GPUs; loading dominates at ≥48 GPUs", Figure6a},
		{"fig6b", "Horovod NT3 accuracy on Summit", "Accuracy 1.0 down to 8 epochs/GPU (bs 20); bs 40 collapses one doubling earlier", Figure6b},
		{"table2", "NT3 time per epoch and average GPU power", "Time/epoch 10.3 s (1 GPU) to ~22 s (384 GPUs); larger batch → lower power", Table2},
		{"fig7a", "NT3 GPU power over time on 384 GPUs", "Long low-power data-loading prefix, then high-power training", Figure7a},
		{"fig7b", "Horovod timeline for NT3 on 384 GPUs", "Broadcast takes ≈43 s after data loading; allreduce cadence follows", Figure7b},
		{"fig8a", "Horovod P1B1 performance on Summit", "Data loading dominates at ≥24 GPUs (bs 100/110)", Figure8a},
		{"fig8b", "Horovod P1B1 training loss", "Loss increases only slightly with bs 110", Figure8b},
		{"fig9a", "Horovod P1B2 performance on Summit", "Data loading starts to dominate with increasing GPUs (bs 60/100)", Figure9a},
		{"fig9b", "Horovod P1B2 accuracy", "Accuracy decreases significantly at ≥96 GPUs (≥16 epochs/GPU needed)", Figure9b},
		{"fig10a", "Horovod P1B3 batch-scaling performance", "linear < sqrt < cbrt runtime; linear fails at 192/384 GPUs (batch 19,200/38,400)", Figure10a},
		{"fig10b", "Horovod P1B3 batch-scaling accuracy", "Cubic root best; 0.6579 at 48 GPUs; no gain beyond 96 GPUs", Figure10b},
		{"table3", "Data-loading time by method on Summit", "Chunked low_memory=False: NT3 ~5×, P1B1 >7×, P1B2 ~3×, P1B3 ~1× speedup", Table3},
		{"table4", "Data-loading time by method on Theta", "Chunked low_memory=False: NT3 ~4×, P1B1 >5×, P1B2 ~3×, P1B3 ~1× speedup", Table4},
		{"fig11", "Optimized NT3 performance on Summit", "Up to 67.68% improvement under strong scaling", Figure11},
		{"table5", "NT3 GPU power and energy, original vs optimized", "Power up to +68.77%; energy down up to 55.93%", Table5},
		{"fig12", "Optimized NT3 broadcast timeline (384 GPUs)", "Broadcast overhead 43.72 s → 4.65 s (89.36% reduction)", Figure12},
		{"fig13", "NT3 on Theta, original vs optimized", "Up to 38.46% improvement, 32.21% energy saving", Figure13},
		{"fig14", "P1B1 improvement on Summit", "Up to 78.25% improvement, 78% energy saving", Figure14},
		{"fig15", "P1B1 improvement on Theta", "Up to 45.22% improvement, 41.78% energy saving", Figure15},
		{"fig16", "P1B2 improvement on Summit", "Up to 55.45% improvement, 55.44% energy saving", Figure16},
		{"fig17", "P1B2 improvement on Theta", "Up to 40.72% improvement, 40.95% energy saving", Figure17},
		{"sec5.4", "P1B3 improvement on Summit (cubic root)", "Only up to 6.50% improvement (data loading already fast)", Section54},
		{"fig18", "NT3 weak scaling on Summit (8 epochs/GPU)", "34.23–52.44% improvement and 22.31–28.59% energy saving up to 3,072 GPUs, decreasing with scale", Figure18},
		{"fig19", "NT3 weak-scaling timeline on 768 GPUs", "Broadcast 37.65 s → 5.3 s (85.92%); 8 communication pieces for 8 epochs", Figure19},
		{"table6", "NT3 weak-scaling accuracy, time/epoch, GPU power", "Accuracy ≈1 everywhere; epoch time >3× sequential at 3,072 GPUs", Table6},
		{"fig20", "P1B1 weak scaling on Summit", "75.24–79.50% improvement, 69.70–77.11% energy saving", Figure20},
		{"fig21", "P1B2 weak scaling on Summit", "48.63–56.62% improvement, 45.86–53.91% energy saving", Figure21},
	}
}

// ByID returns the driver for one paper artifact.
func ByID(id string) (Experiment, bool) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

// IDs lists every experiment ID in paper order.
func IDs() []string {
	exps := Experiments()
	out := make([]string, len(exps))
	for i, e := range exps {
		out[i] = e.ID
	}
	return out
}

// RunAll executes every experiment, returning tables in paper order.
func RunAll() ([]*report.Table, error) {
	var out []*report.Table
	for _, e := range Experiments() {
		t, err := e.Run()
		if err != nil {
			return nil, fmt.Errorf("core: %s: %w", e.ID, err)
		}
		out = append(out, t)
	}
	return out, nil
}

// --- shared sweep helpers ---

func run(m hpc.Machine, bench string, ranks int, scaling sim.Scaling, epochs, batch int, loader sim.Loader) (*sim.Result, error) {
	b, err := sim.BenchByName(bench)
	if err != nil {
		return nil, err
	}
	return sim.Run(sim.Config{
		Machine: m, Bench: b, Ranks: ranks, Scaling: scaling,
		Epochs: epochs, Batch: batch, Loader: loader,
	})
}

func mustSummit(bench string, ranks int, batch int, loader sim.Loader) (*sim.Result, error) {
	return run(hpc.Summit(), bench, ranks, sim.Strong, 0, batch, loader)
}

// improvementTable builds the orig-vs-optimized table shared by
// Figures 11, 13–17, 20, 21.
func improvementTable(id, title string, m hpc.Machine, bench string, scaling sim.Scaling, epochs int, ranksList []int) (*report.Table, error) {
	t := report.New(id, title,
		"workers", "original_total_s", "optimized_total_s", "improvement",
		"original_energy_kJ", "optimized_energy_kJ", "energy_saving")
	maxImp, maxES := 0.0, 0.0
	for _, n := range ranksList {
		orig, err := run(m, bench, n, scaling, epochs, 0, sim.LoaderNaive)
		if err != nil {
			return nil, err
		}
		opt, err := run(m, bench, n, scaling, epochs, 0, sim.LoaderChunked)
		if err != nil {
			return nil, err
		}
		imp := Improvement(orig.TotalTime, opt.TotalTime)
		es := Improvement(orig.TotalEnergyJ, opt.TotalEnergyJ)
		if imp > maxImp {
			maxImp = imp
		}
		if es > maxES {
			maxES = es
		}
		t.AddRow(report.I(n),
			report.F(orig.TotalTime, 1), report.F(opt.TotalTime, 1), report.Pct(imp),
			report.F(orig.TotalEnergyJ/1e3, 1), report.F(opt.TotalEnergyJ/1e3, 1), report.Pct(es))
	}
	t.AddNote("max improvement %.2f%%, max energy saving %.2f%%", maxImp, maxES)
	return t, nil
}

// ranksUpTo filters a sweep to worker counts that keep at least
// minEpochs per rank under strong scaling of totalEpochs.
func ranksUpTo(sweep []int, totalEpochs, minEpochs int) []int {
	var out []int
	for _, n := range sweep {
		if totalEpochs/n >= minEpochs {
			out = append(out, n)
		}
	}
	sort.Ints(out)
	return out
}

// timelineSummary condenses a Horovod timeline into span rows.
func timelineSummary(t *report.Table, tl *trace.Timeline) {
	for _, cat := range []string{"io", "broadcast", "allreduce", "compute"} {
		start, end, ok := tl.Span(cat)
		if !ok {
			continue
		}
		t.AddRow(cat, report.F(start, 2), report.F(end, 2), report.F(end-start, 2),
			report.I(len(tl.FilterCat(cat))))
	}
}
