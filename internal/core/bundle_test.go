package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"candle/internal/trace"
)

func TestWriteBundle(t *testing.T) {
	dir := t.TempDir()
	n, err := WriteBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Every experiment CSV + tables.txt + charts.txt + 3 timelines +
	// 1 power trace.
	want := len(Experiments()) + 2 + 3 + 1
	if n != want {
		t.Fatalf("wrote %d files, want %d", n, want)
	}
	// tables.txt contains every artifact header.
	raw, err := os.ReadFile(filepath.Join(dir, "tables.txt"))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range IDs() {
		if !strings.Contains(string(raw), "== "+id+":") {
			t.Fatalf("tables.txt missing %s", id)
		}
	}
	// The sec5.4 CSV must exist under a sanitized name.
	if _, err := os.Stat(filepath.Join(dir, "csv", "sec5_4.csv")); err != nil {
		t.Fatal(err)
	}
	// Timelines parse as Chrome traces.
	for _, name := range []string{"fig7b", "fig12", "fig19"} {
		f, err := os.Open(filepath.Join(dir, "timelines", name+".json"))
		if err != nil {
			t.Fatal(err)
		}
		tl, err := trace.ReadJSON(f)
		f.Close()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tl.Len() == 0 {
			t.Fatalf("%s: empty timeline", name)
		}
	}
	// Charts render the headline figures.
	chartsRaw, err := os.ReadFile(filepath.Join(dir, "charts.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(chartsRaw), "fig11") || !strings.Contains(string(chartsRaw), "#") {
		t.Fatalf("charts.txt missing content")
	}
	// Power trace has a header and many samples.
	pow, err := os.ReadFile(filepath.Join(dir, "power", "fig7a.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(pow), "\n"); lines < 100 {
		t.Fatalf("power trace has only %d lines", lines)
	}
}

func TestSanitize(t *testing.T) {
	if sanitize("sec5.4") != "sec5_4" || sanitize("fig6a") != "fig6a" {
		t.Fatal("sanitize")
	}
}
