package core

import (
	"fmt"
	"os"
	"path/filepath"

	"candle/internal/hpc"
	"candle/internal/power"
	"candle/internal/report"
	"candle/internal/sim"
)

// WriteBundle regenerates every paper artifact into dir as a
// self-contained reproduction bundle:
//
//	tables.txt            all tables/figures, aligned ASCII
//	csv/<id>.csv          one CSV per artifact, for plotting
//	timelines/fig7b.json  Chrome traces for Figures 7b, 12, 19
//	timelines/fig12.json
//	timelines/fig19.json
//	power/fig7a.csv       the 1 Hz GPU power trace of Figure 7a
//
// It returns the number of files written.
func WriteBundle(dir string) (int, error) {
	written := 0
	for _, sub := range []string{"csv", "timelines", "power"} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o755); err != nil {
			return written, fmt.Errorf("core: %w", err)
		}
	}
	tables, err := RunAll()
	if err != nil {
		return written, err
	}
	var all []byte
	for _, t := range tables {
		all = append(all, t.String()...)
		all = append(all, '\n')
		csvPath := filepath.Join(dir, "csv", sanitize(t.ID)+".csv")
		if err := os.WriteFile(csvPath, []byte(t.CSV()), 0o644); err != nil {
			return written, fmt.Errorf("core: %w", err)
		}
		written++
	}
	if err := os.WriteFile(filepath.Join(dir, "tables.txt"), all, 0o644); err != nil {
		return written, fmt.Errorf("core: %w", err)
	}
	written++

	// charts.txt: ASCII bar charts of the headline series, the
	// terminal stand-in for the paper's figures.
	var charts []byte
	for _, cc := range []struct {
		id       string
		valueCol int
	}{
		{"fig6a", 1},  // TensorFlow time vs GPUs
		{"fig6b", 2},  // accuracy vs GPUs
		{"fig10a", 2}, // linear-scaling runtime
		{"fig11", 3},  // improvement %
		{"fig13", 3},
		{"fig14", 3},
		{"fig16", 3},
		{"fig18", 3},
		{"fig20", 3},
		{"fig21", 3},
	} {
		var tb *report.Table
		for _, t := range tables {
			if t.ID == cc.id {
				tb = t
			}
		}
		if tb == nil {
			continue
		}
		c, err := report.ChartFromTable(tb, 0, cc.valueCol)
		if err != nil {
			return written, err
		}
		charts = append(charts, c.String()...)
		charts = append(charts, '\n')
	}
	if err := os.WriteFile(filepath.Join(dir, "charts.txt"), charts, 0o644); err != nil {
		return written, fmt.Errorf("core: %w", err)
	}
	written++

	// Timelines for the three timeline figures.
	for _, tc := range []struct {
		name    string
		ranks   int
		scaling sim.Scaling
		epochs  int
		loader  sim.Loader
	}{
		{"fig7b", 384, sim.Strong, 0, sim.LoaderNaive},
		{"fig12", 384, sim.Strong, 0, sim.LoaderChunked},
		{"fig19", 768, sim.Weak, 8, sim.LoaderNaive},
	} {
		tl, _, err := TimelineFor("NT3", tc.ranks, tc.scaling, tc.epochs, tc.loader)
		if err != nil {
			return written, err
		}
		f, err := os.Create(filepath.Join(dir, "timelines", tc.name+".json"))
		if err != nil {
			return written, fmt.Errorf("core: %w", err)
		}
		if err := tl.WriteJSON(f); err != nil {
			f.Close()
			return written, err
		}
		if err := f.Close(); err != nil {
			return written, fmt.Errorf("core: %w", err)
		}
		written++
	}

	// Figure 7a power trace as CSV.
	nt3, err := sim.BenchByName("NT3")
	if err != nil {
		return written, err
	}
	r, err := sim.Run(sim.Config{
		Machine: hpc.Summit(), Bench: nt3, Ranks: 384,
		Scaling: sim.Strong, Loader: sim.LoaderNaive,
	})
	if err != nil {
		return written, err
	}
	samples := power.Sampler{RateHz: 1}.Samples(r.Profile, r.PowerModel)
	pt := report.New("fig7a-trace", "GPU power trace", "t_s", "watts")
	for _, s := range samples {
		pt.AddRow(report.F(s.T, 0), report.F(s.Watts, 1))
	}
	if err := os.WriteFile(filepath.Join(dir, "power", "fig7a.csv"), []byte(pt.CSV()), 0o644); err != nil {
		return written, fmt.Errorf("core: %w", err)
	}
	written++
	return written, nil
}

// sanitize maps artifact IDs to filesystem-safe names ("sec5.4" →
// "sec5_4").
func sanitize(id string) string {
	out := make([]rune, 0, len(id))
	for _, r := range id {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9', r == '-':
			out = append(out, r)
		default:
			out = append(out, '_')
		}
	}
	return string(out)
}
