package mpi

import "fmt"

// Additional collectives completing the MPI surface Horovod's concepts
// come from: rooted Reduce and Gather (binomial trees) and Scatter.

// Collective tags for the rooted operations.
const (
	tagReduce  = -5
	tagGatherR = -6
	tagScatter = -7
)

// Reduce sums data element-wise onto the root using a binomial tree
// (the mirror image of Broadcast). Non-root ranks' buffers are left
// with their partial sums and must not be interpreted as results.
func (c *Comm) Reduce(root int, data []float64) error {
	if err := c.enterOp("reduce"); err != nil {
		return err
	}
	n := c.world.size
	if n == 1 {
		return nil
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			// Send the partial sum up the tree and leave.
			dst := (c.rank - mask + n) % n
			buf := make([]float64, len(data))
			copy(buf, data)
			return c.Send(dst, tagReduce, buf)
		}
		peer := rel | mask
		if peer < n {
			src := (peer + root) % n
			got, err := c.Recv(src, tagReduce)
			if err != nil {
				return err
			}
			if len(got) != len(data) {
				panic(fmt.Sprintf("mpi: reduce length mismatch %d != %d", len(got), len(data)))
			}
			for i, v := range got {
				data[i] += v
			}
		}
		mask <<= 1
	}
	return nil
}

// Gather collects each rank's (equal-length) contribution at the
// root; the returned slice is indexed by rank at the root and nil
// elsewhere.
func (c *Comm) Gather(root int, mine []float64) ([][]float64, error) {
	if err := c.enterOp("gather"); err != nil {
		return nil, err
	}
	n := c.world.size
	if c.rank != root {
		buf := make([]float64, len(mine))
		copy(buf, mine)
		if err := c.Send(root, tagGatherR, buf); err != nil {
			return nil, err
		}
		return nil, nil
	}
	out := make([][]float64, n)
	own := make([]float64, len(mine))
	copy(own, mine)
	out[c.rank] = own
	for src := 0; src < n; src++ {
		if src == c.rank {
			continue
		}
		got, err := c.Recv(src, tagGatherR)
		if err != nil {
			return nil, err
		}
		out[src] = got
	}
	return out, nil
}

// Scatter distributes parts[r] from the root to each rank r and
// returns this rank's part. Only the root's parts argument is used;
// it must have exactly world-size entries.
func (c *Comm) Scatter(root int, parts [][]float64) ([]float64, error) {
	if err := c.enterOp("scatter"); err != nil {
		return nil, err
	}
	n := c.world.size
	if c.rank == root {
		if len(parts) != n {
			panic(fmt.Sprintf("mpi: scatter needs %d parts, got %d", n, len(parts)))
		}
		for dst := 0; dst < n; dst++ {
			if dst == c.rank {
				continue
			}
			buf := make([]float64, len(parts[dst]))
			copy(buf, parts[dst])
			if err := c.Send(dst, tagScatter, buf); err != nil {
				return nil, err
			}
		}
		own := make([]float64, len(parts[c.rank]))
		copy(own, parts[c.rank])
		return own, nil
	}
	return c.Recv(root, tagScatter)
}
