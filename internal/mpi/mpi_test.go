package mpi

import (
	"errors"
	"math"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestWorldSizeValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for size 0")
		}
	}()
	NewWorld(0)
}

func TestCommRankBounds(t *testing.T) {
	w := NewWorld(2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for rank out of range")
		}
	}()
	w.Comm(2)
}

func TestSendRecvFIFO(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			for v := 1.0; v <= 3; v++ {
				if err := c.Send(1, tagP2P, []float64{v}); err != nil {
					return err
				}
			}
			return nil
		}
		for want := 1.0; want <= 3; want++ {
			got, err := c.Recv(0, tagP2P)
			if err != nil {
				return err
			}
			if got[0] != want {
				t.Errorf("FIFO violated: got %v want %v", got[0], want)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunPropagatesErrors(t *testing.T) {
	w := NewWorld(3)
	sentinel := errors.New("boom")
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRecoversPanics(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("panic not converted to error")
	}
}

func TestBroadcastAllSizes(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 5, 8, 13, 16} {
		for root := 0; root < size; root += max(1, size/3) {
			w := NewWorld(size)
			payload := []float64{3.14, 2.71, 1.41}
			err := w.Run(func(c *Comm) error {
				data := make([]float64, len(payload))
				if c.Rank() == root {
					copy(data, payload)
				}
				if err := c.Broadcast(root, data); err != nil {
					return err
				}
				for i, v := range payload {
					if data[i] != v {
						t.Errorf("size %d root %d rank %d: got %v", size, root, c.Rank(), data)
						break
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAllreduceSumMatchesSerial(t *testing.T) {
	for _, size := range []int{1, 2, 3, 4, 6, 7, 16} {
		for _, length := range []int{1, 2, 3, 5, 16, 63, 200} {
			rng := rand.New(rand.NewSource(int64(size*1000 + length)))
			inputs := make([][]float64, size)
			want := make([]float64, length)
			for r := range inputs {
				inputs[r] = make([]float64, length)
				for i := range inputs[r] {
					inputs[r][i] = rng.NormFloat64()
					want[i] += inputs[r][i]
				}
			}
			w := NewWorld(size)
			err := w.Run(func(c *Comm) error {
				data := make([]float64, length)
				copy(data, inputs[c.Rank()])
				if err := c.AllreduceSum(data); err != nil {
					return err
				}
				for i := range data {
					if math.Abs(data[i]-want[i]) > 1e-9 {
						t.Errorf("size %d len %d rank %d elem %d: got %v want %v",
							size, length, c.Rank(), i, data[i], want[i])
						return nil
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestAllreduceMeanDividesBySize(t *testing.T) {
	w := NewWorld(4)
	err := w.Run(func(c *Comm) error {
		data := []float64{float64(c.Rank() + 1)} // 1+2+3+4 = 10 → mean 2.5
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		if math.Abs(data[0]-2.5) > 1e-12 {
			t.Errorf("rank %d mean = %v", c.Rank(), data[0])
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestAllgather(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8} {
		w := NewWorld(size)
		err := w.Run(func(c *Comm) error {
			mine := []float64{float64(c.Rank()), float64(c.Rank() * 10)}
			all, err := c.Allgather(mine)
			if err != nil {
				return err
			}
			if len(all) != size {
				t.Errorf("allgather returned %d slots", len(all))
				return nil
			}
			for r := 0; r < size; r++ {
				if all[r][0] != float64(r) || all[r][1] != float64(r*10) {
					t.Errorf("size %d rank %d slot %d = %v", size, c.Rank(), r, all[r])
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestAllgatherResultIsCopy(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		mine := []float64{1}
		all, err := c.Allgather(mine)
		if err != nil {
			return err
		}
		mine[0] = 99
		if all[c.Rank()][0] != 1 {
			t.Error("allgather aliased caller's buffer")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierSynchronizes(t *testing.T) {
	const size = 8
	w := NewWorld(size)
	var before, after atomic.Int32
	err := w.Run(func(c *Comm) error {
		before.Add(1)
		if err := c.Barrier(); err != nil {
			return err
		}
		// Every rank must have passed "before" by now.
		if got := before.Load(); got != size {
			t.Errorf("rank %d saw before=%d after barrier", c.Rank(), got)
		}
		after.Add(1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if after.Load() != size {
		t.Fatal("not all ranks finished")
	}
}

func TestStatsCounting(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, tagP2P, []float64{1, 2, 3})
		}
		_, err := c.Recv(0, tagP2P)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	if w.MessagesSent() != 1 {
		t.Fatalf("messages = %d", w.MessagesSent())
	}
	if w.BytesSent() != 24 {
		t.Fatalf("bytes = %d", w.BytesSent())
	}
}

func TestChunkBounds(t *testing.T) {
	off := chunkBounds(10, 3)
	want := []int{0, 4, 7, 10}
	for i, v := range want {
		if off[i] != v {
			t.Fatalf("chunkBounds(10,3) = %v", off)
		}
	}
	// Shorter than n: some chunks empty, still covers everything.
	off = chunkBounds(2, 5)
	if off[0] != 0 || off[5] != 2 {
		t.Fatalf("chunkBounds(2,5) = %v", off)
	}
	for i := 0; i < 5; i++ {
		if off[i+1] < off[i] {
			t.Fatalf("non-monotonic bounds: %v", off)
		}
	}
}

// Property: allreduce-sum equals the serial sum for arbitrary sizes,
// lengths (including lengths shorter than the rank count), and data.
func TestQuickAllreduceSum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(9)
		length := 1 + rng.Intn(40)
		inputs := make([][]float64, size)
		want := make([]float64, length)
		for r := range inputs {
			inputs[r] = make([]float64, length)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
				want[i] += inputs[r][i]
			}
		}
		ok := atomic.Bool{}
		ok.Store(true)
		w := NewWorld(size)
		if err := w.Run(func(c *Comm) error {
			data := make([]float64, length)
			copy(data, inputs[c.Rank()])
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
			for i := range data {
				if math.Abs(data[i]-want[i]) > 1e-9 {
					ok.Store(false)
				}
			}
			return nil
		}); err != nil {
			return false
		}
		return ok.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: broadcast is idempotent — broadcasting twice leaves the
// same data everywhere.
func TestQuickBroadcastIdempotent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(8)
		root := rng.Intn(size)
		length := 1 + rng.Intn(20)
		payload := make([]float64, length)
		for i := range payload {
			payload[i] = rng.NormFloat64()
		}
		ok := atomic.Bool{}
		ok.Store(true)
		w := NewWorld(size)
		if err := w.Run(func(c *Comm) error {
			data := make([]float64, length)
			if c.Rank() == root {
				copy(data, payload)
			}
			if err := c.Broadcast(root, data); err != nil {
				return err
			}
			if err := c.Broadcast(root, data); err != nil {
				return err
			}
			for i := range data {
				if data[i] != payload[i] {
					ok.Store(false)
				}
			}
			return nil
		}); err != nil {
			return false
		}
		return ok.Load()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAllreduceRing8x4096(b *testing.B) {
	w := NewWorld(8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = w.Run(func(c *Comm) error {
			data := make([]float64, 4096)
			return c.AllreduceSum(data)
		})
	}
}
