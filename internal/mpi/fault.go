package mpi

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// This file is the substrate's failure domain. The paper's scaling
// story hinges on the fact that synchronous data parallelism couples
// every rank at each collective; the flip side is that one failed rank
// stalls all the others forever unless the communicator has an abort
// path. World carries that path: a per-world done channel plus a
// sticky record of the first failure, which every Send/Recv and
// collective selects on, so peers unwind within one collective step
// with a typed *RankFailedError instead of deadlocking.
//
// FaultPlan is the deterministic injection API that scripts failures
// at the link layer — kills and delays keyed by a rank's collective
// step count, and per-link send failures — so tests and the sim can
// reproduce the paper's straggler signature or a mid-training crash
// without touching product code paths.

// RankFailedError reports that a rank failed and where the failure was
// observed. Every rank unwinding from an aborted collective receives
// one naming the *originating* rank, so callers can distinguish the
// root cause from the cascade.
type RankFailedError struct {
	// Rank is the rank that originally failed (not necessarily the
	// rank that observed the error).
	Rank int
	// Op is the operation during which this error surfaced: "run",
	// "send", "recv", or a collective name.
	Op string
	// Cause is the originating rank's underlying error.
	Cause error
}

func (e *RankFailedError) Error() string {
	return fmt.Sprintf("mpi: rank %d failed (observed in %s): %v", e.Rank, e.Op, e.Cause)
}

func (e *RankFailedError) Unwrap() error { return e.Cause }

// Injected fault causes, distinguishable with errors.Is.
var (
	// ErrKilled is the cause of a FaultPlan.KillAt failure.
	ErrKilled = errors.New("mpi: injected rank kill")
	// ErrLinkFailed is the cause of a FaultPlan.FailSend failure.
	ErrLinkFailed = errors.New("mpi: injected link failure")
)

// Abort marks the world failed on behalf of the given rank and wakes
// every blocked Send/Recv/collective. Only the first call wins; later
// calls (the cascade) are no-ops, so Failure always names the
// originating rank.
func (w *World) Abort(rank int, op string, cause error) {
	w.abortOnce.Do(func() {
		w.failure.Store(&RankFailedError{Rank: rank, Op: op, Cause: cause})
		close(w.done)
	})
}

// Failure returns the sticky record of the first failure, or nil while
// the world is healthy.
func (w *World) Failure() *RankFailedError {
	return w.failure.Load()
}

// Aborted reports whether the world has been aborted.
func (w *World) Aborted() bool {
	select {
	case <-w.done:
		return true
	default:
		return false
	}
}

// abortError builds the error a peer observes when it finds the world
// aborted inside op: the originating failure re-stamped with the local
// operation.
func (w *World) abortError(op string) *RankFailedError {
	f := w.failure.Load()
	if f == nil {
		// close(done) strictly follows the failure store, so this is
		// unreachable; keep a sane error anyway.
		return &RankFailedError{Rank: -1, Op: op, Cause: errors.New("mpi: world aborted")}
	}
	return &RankFailedError{Rank: f.Rank, Op: op, Cause: f.Cause}
}

// rankStep keys a fault to one rank's nth collective entry.
type rankStep struct{ rank, step int }

// link keys a fault to one ordered (src, dst) channel.
type link struct{ src, dst int }

// FaultPlan scripts deterministic failures. A "step" is the 0-based
// count of collective operations a rank has entered (Barrier,
// Broadcast, AllreduceSum/Mean, Allgather, Reduce, Gather, Scatter
// each count once). Each scripted fault fires at most once, ever —
// a plan carried across an elastic restart does not re-kill the
// shrunken world. The zero value is unusable; use NewFaultPlan.
// Plans are safe for concurrent use by all ranks.
type FaultPlan struct {
	mu        sync.Mutex
	kills     map[rankStep]bool
	delays    map[rankStep]time.Duration
	failSends map[link]int // remaining sends on the link before failing
	script    []string     // every scripted fault, in spec form
	fired     []string     // consumed faults, in fire order
}

// NewFaultPlan returns an empty plan. Methods chain:
//
//	mpi.NewFaultPlan().KillAt(2, 5).DelayAt(3, 0, 50*time.Millisecond)
func NewFaultPlan() *FaultPlan {
	return &FaultPlan{
		kills:     make(map[rankStep]bool),
		delays:    make(map[rankStep]time.Duration),
		failSends: make(map[link]int),
	}
}

// KillAt scripts rank to fail with ErrKilled when it enters its step-th
// collective operation.
func (p *FaultPlan) KillAt(rank, step int) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.kills[rankStep{rank, step}] = true
	p.script = append(p.script, killSpec(rank, step))
	return p
}

// DelayAt scripts rank to sleep d before its step-th collective
// operation — a deterministic straggler.
func (p *FaultPlan) DelayAt(rank, step int, d time.Duration) *FaultPlan {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.delays[rankStep{rank, step}] = d
	p.script = append(p.script, delaySpec(rank, step, d))
	return p
}

// FailSend scripts the nth (1-based) point-to-point send from src to
// dst to fail with ErrLinkFailed.
func (p *FaultPlan) FailSend(src, dst, nth int) *FaultPlan {
	if nth < 1 {
		nth = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.failSends[link{src, dst}] = nth
	p.script = append(p.script, failSendSpec(src, dst, nth))
	return p
}

// Spec strings give every scripted fault a single canonical rendering,
// shared by String(), Fired(), and the scenario harness's repro lines.
func killSpec(rank, step int) string {
	return fmt.Sprintf("kill@rank%d/step%d", rank, step)
}

func delaySpec(rank, step int, d time.Duration) string {
	return fmt.Sprintf("delay@rank%d/step%d/%s", rank, step, d)
}

func failSendSpec(src, dst, nth int) string {
	return fmt.Sprintf("failsend@rank%d->rank%d/n%d", src, dst, nth)
}

// String renders the full scripted plan deterministically (sorted,
// space-separated), independent of construction order and of which
// faults have already fired. A nil plan renders as the empty string.
func (p *FaultPlan) String() string {
	if p == nil {
		return ""
	}
	p.mu.Lock()
	specs := append([]string(nil), p.script...)
	p.mu.Unlock()
	sort.Strings(specs)
	return strings.Join(specs, " ")
}

// Fired returns the faults that have actually been consumed, in fire
// order, in the same spec form String uses (e.g. "kill@rank1/step4").
// A scripted fault that never fires — a step past the end of the run,
// a rank dropped by an elastic restart — never appears. Safe on a nil
// plan.
func (p *FaultPlan) Fired() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return append([]string(nil), p.fired...)
}

// takeKill consumes a scripted kill for (rank, step).
func (p *FaultPlan) takeKill(rank, step int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := rankStep{rank, step}
	if !p.kills[k] {
		return false
	}
	delete(p.kills, k)
	p.fired = append(p.fired, killSpec(rank, step))
	return true
}

// takeDelay consumes a scripted delay for (rank, step).
func (p *FaultPlan) takeDelay(rank, step int) (time.Duration, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	k := rankStep{rank, step}
	d, ok := p.delays[k]
	if ok {
		delete(p.delays, k)
		p.fired = append(p.fired, delaySpec(rank, step, d))
	}
	return d, ok
}

// takeFailSend counts one send on (src, dst) and consumes the scripted
// failure when the count reaches it.
func (p *FaultPlan) takeFailSend(src, dst int) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := link{src, dst}
	n, ok := p.failSends[l]
	if !ok {
		return false
	}
	n--
	if n > 0 {
		p.failSends[l] = n
		return false
	}
	delete(p.failSends, l)
	p.fired = append(p.fired, fmt.Sprintf("failsend@rank%d->rank%d", src, dst))
	return true
}

// InjectFaults attaches a fault plan to the world. Call before Run;
// pass nil to clear. The same plan may be shared by successive worlds
// (elastic restarts): fired faults stay consumed.
func (w *World) InjectFaults(p *FaultPlan) { w.faults = p }

// enterOp is called at the top of every collective. It advances the
// rank's step counter, applies scripted delays and kills, and fails
// fast when the world is already aborted.
func (c *Comm) enterOp(op string) error {
	step := c.ops
	c.ops++
	w := c.world
	if p := w.faults; p != nil {
		if d, ok := p.takeDelay(c.rank, step); ok {
			time.Sleep(d)
		}
		if p.takeKill(c.rank, step) {
			// The kill models the process dying mid-collective: the
			// world aborts immediately so peers unwind without waiting
			// for this rank's worker function to return.
			w.Abort(c.rank, op, ErrKilled)
			return &RankFailedError{Rank: c.rank, Op: op, Cause: ErrKilled}
		}
	}
	select {
	case <-w.done:
		return w.abortError(op)
	default:
	}
	return nil
}
