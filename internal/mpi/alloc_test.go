package mpi

import (
	"math/rand"
	"runtime"
	"runtime/debug"
	"testing"
)

// measureAllocsPerOp runs op on every rank of a fresh world — warm
// iterations first, then rounds measured iterations — and returns the
// process-wide heap allocations per measured operation. All ranks run
// the same allocation-free code, so the global malloc counter isolates
// the collective's own allocations; GC is disabled during the window
// to keep the scratch rings and runtime quiet.
func measureAllocsPerOp(t *testing.T, size, warm, rounds int, op func(c *Comm) error) float64 {
	t.Helper()
	defer debug.SetGCPercent(debug.SetGCPercent(-1))
	w := NewWorld(size)
	var before, after runtime.MemStats
	err := w.Run(func(c *Comm) error {
		for i := 0; i < warm; i++ {
			if err := op(c); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			runtime.GC()
			runtime.ReadMemStats(&before)
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		for i := 0; i < rounds; i++ {
			if err := op(c); err != nil {
				return err
			}
		}
		if err := c.Barrier(); err != nil {
			return err
		}
		if c.Rank() == 0 {
			runtime.ReadMemStats(&after)
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	return float64(after.Mallocs-before.Mallocs) / float64(rounds)
}

// TestHotCollectivesAllocationFree is the allocs-per-op guard for the
// collectives on the training hot path, mirroring the layer-step guard
// in internal/nn/alloc_test.go: once the link scratch rings are warm,
// Barrier, Broadcast, AllreduceSum/Mean, and AllgatherInto must not
// allocate. The threshold tolerates a stray runtime allocation (sudog
// caching, timer wheel) but fails on any per-step make().
func TestHotCollectivesAllocationFree(t *testing.T) {
	const size = 4
	// Per-rank buffers: collectives mutate the caller's slice, so
	// sharing one across ranks would race.
	bufs := make([][]float64, size)
	gathered := make([][]float64, size)
	mine := make([][]float64, size)
	for r := 0; r < size; r++ {
		bufs[r] = make([]float64, 4096)
		gathered[r] = make([]float64, size*512)
		mine[r] = make([]float64, 512)
	}
	cases := []struct {
		name string
		op   func(c *Comm) error
	}{
		{"Barrier", func(c *Comm) error { return c.Barrier() }},
		{"Broadcast", func(c *Comm) error { return c.Broadcast(0, bufs[c.Rank()]) }},
		{"AllreduceSum", func(c *Comm) error { return c.AllreduceSum(bufs[c.Rank()]) }},
		{"AllreduceMean", func(c *Comm) error { return c.AllreduceMean(bufs[c.Rank()]) }},
		{"AllgatherInto", func(c *Comm) error { return c.AllgatherInto(mine[c.Rank()], gathered[c.Rank()]) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			// Warm past the scratch ring length: a collective sending one
			// message per link per op touches one slab per op, so fewer
			// than scratchSlabs warm ops would leave cold slabs to be
			// allocated inside the measured window.
			allocs := measureAllocsPerOp(t, size, scratchSlabs+2, 100, tc.op)
			if allocs > 0.05 {
				t.Fatalf("%s allocated %.3f objects/op across %d ranks, want 0", tc.name, allocs, size)
			}
		})
	}
}

// TestLargeAllreduceAllocationFree extends the guard past the
// segmentation threshold: a pipelined (multi-segment) ring must reuse
// its scratch slabs exactly like the single-segment path.
func TestLargeAllreduceAllocationFree(t *testing.T) {
	const size = 4
	bufs := make([][]float64, size)
	for r := 0; r < size; r++ {
		bufs[r] = make([]float64, 3*defaultSegmentElems+17)
	}
	allocs := measureAllocsPerOp(t, size, 3, 20, func(c *Comm) error {
		return c.AllreduceSum(bufs[c.Rank()])
	})
	if allocs > 0.05 {
		t.Fatalf("segmented AllreduceSum allocated %.3f objects/op, want 0", allocs)
	}
}

// TestSegmentedAllreduceMatchesSerial checks the pipelined ring against
// the serial sum on lengths straddling the segmentation threshold,
// including ragged sizes that split unevenly across both segments and
// chunks.
func TestSegmentedAllreduceMatchesSerial(t *testing.T) {
	for _, size := range []int{2, 3, 5} {
		for _, l := range []int{defaultSegmentElems - 1, defaultSegmentElems + 1, 2*defaultSegmentElems + 13, 5*defaultSegmentElems + 7} {
			w := NewWorld(size)
			// Integer contributions keep float64 sums exact under any
			// association, so the check is order-independent.
			rng := rand.New(rand.NewSource(int64(size*1000 + l)))
			inputs := make([][]float64, size)
			want := make([]float64, l)
			for r := 0; r < size; r++ {
				inputs[r] = make([]float64, l)
				for i := range inputs[r] {
					inputs[r][i] = float64(rng.Intn(200) - 100)
					want[i] += inputs[r][i]
				}
			}
			err := w.Run(func(c *Comm) error {
				data := make([]float64, l)
				copy(data, inputs[c.Rank()])
				if err := c.AllreduceSum(data); err != nil {
					return err
				}
				for i, v := range data {
					if v != want[i] {
						t.Errorf("size %d len %d rank %d: elem %d = %v, want %v", size, l, c.Rank(), i, v, want[i])
						break
					}
				}
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestSetSegmentElems: a smaller segment size forces the pipelined
// path (more messages) without changing results.
func TestSetSegmentElems(t *testing.T) {
	const size, l = 3, 1024
	run := func(segElems int) (result []float64, msgs int64) {
		w := NewWorld(size)
		w.SetSegmentElems(segElems)
		err := w.Run(func(c *Comm) error {
			data := make([]float64, l)
			for i := range data {
				data[i] = float64(c.Rank()*l + i)
			}
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
			if c.Rank() == 0 {
				result = data
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return result, w.MessagesSent()
	}
	plain, plainMsgs := run(0) // default: l is far below the threshold
	seg, segMsgs := run(256)   // 4 segments
	for i := range plain {
		if plain[i] != seg[i] {
			t.Fatalf("segmented result differs at %d: %v vs %v", i, seg[i], plain[i])
		}
	}
	if segMsgs != 4*plainMsgs {
		t.Fatalf("4-segment ring sent %d messages, want 4× the plain ring's %d", segMsgs, plainMsgs)
	}
}

// TestAllgatherIntoLayout checks the flat variant's rank-major layout
// and that it matches the slice-of-slices API.
func TestAllgatherIntoLayout(t *testing.T) {
	const size, l = 4, 5
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		mine := make([]float64, l)
		for i := range mine {
			mine[i] = float64(c.Rank()*100 + i)
		}
		out := make([]float64, size*l)
		if err := c.AllgatherInto(mine, out); err != nil {
			return err
		}
		for r := 0; r < size; r++ {
			for i := 0; i < l; i++ {
				if got, want := out[r*l+i], float64(r*100+i); got != want {
					t.Errorf("rank %d: out[%d][%d] = %v, want %v", c.Rank(), r, i, got, want)
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
