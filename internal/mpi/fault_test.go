package mpi

import (
	"errors"
	"testing"
	"time"
)

// runBounded runs f on the world and fails the test if it does not
// finish within the deadline — the guard that turns a deadlock into a
// test failure instead of a hung suite.
func runBounded(t *testing.T, w *World, d time.Duration, f func(c *Comm) error) error {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- w.Run(f) }()
	select {
	case err := <-done:
		return err
	case <-time.After(d):
		t.Fatalf("world.Run did not return within %v (deadlock)", d)
		return nil
	}
}

// TestAbortUnblocksBarrier is the core abort property: one rank fails
// before the collective and every peer blocked inside Barrier unwinds
// with the originating failure instead of hanging forever.
func TestAbortUnblocksBarrier(t *testing.T) {
	sentinel := errors.New("csv exploded")
	w := NewWorld(4)
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		if c.Rank() == 2 {
			return sentinel
		}
		if err := c.Barrier(); err == nil {
			t.Errorf("rank %d: barrier succeeded despite peer failure", c.Rank())
		}
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run did not surface the originating error: %v", err)
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 2 {
		t.Fatalf("want RankFailedError naming rank 2, got %v", err)
	}
}

// TestCascadeNamesOriginatingRank: peers observing the abort receive a
// RankFailedError naming the rank that failed, not themselves.
func TestCascadeNamesOriginatingRank(t *testing.T) {
	sentinel := errors.New("origin")
	w := NewWorld(3)
	observed := make([]error, 3)
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		if c.Rank() == 1 {
			return sentinel
		}
		observed[c.Rank()] = c.AllreduceSum(make([]float64, 8))
		return nil
	})
	if !errors.Is(err, sentinel) {
		t.Fatalf("Run error = %v", err)
	}
	for _, r := range []int{0, 2} {
		var rf *RankFailedError
		if !errors.As(observed[r], &rf) {
			t.Fatalf("rank %d observed %v, want RankFailedError", r, observed[r])
		}
		if rf.Rank != 1 {
			t.Fatalf("rank %d blamed rank %d, want 1", r, rf.Rank)
		}
		if !errors.Is(observed[r], sentinel) {
			t.Fatalf("rank %d lost the cause: %v", r, observed[r])
		}
	}
}

// TestPanicAbortsWorld: a panicking rank must also unblock its peers.
func TestPanicAbortsWorld(t *testing.T) {
	w := NewWorld(3)
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			panic("kaboom")
		}
		_ = c.Barrier()
		return nil
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 0 {
		t.Fatalf("want RankFailedError naming rank 0, got %v", err)
	}
}

// TestOpsAfterAbortFailFast: once the world aborts, Send, Recv, and
// collectives return immediately instead of blocking.
func TestOpsAfterAbortFailFast(t *testing.T) {
	w := NewWorld(2)
	w.Abort(1, "test", errors.New("already dead"))
	c := w.Comm(0)
	if err := c.Send(1, tagP2P, []float64{1}); err == nil {
		t.Fatal("Send succeeded on aborted world")
	}
	if _, err := c.Recv(1, tagP2P); err == nil {
		t.Fatal("Recv succeeded on aborted world")
	}
	if err := c.Barrier(); err == nil {
		t.Fatal("Barrier succeeded on aborted world")
	}
	if !w.Aborted() {
		t.Fatal("Aborted() = false after Abort")
	}
	if f := w.Failure(); f == nil || f.Rank != 1 {
		t.Fatalf("Failure() = %v", f)
	}
}

// TestKillAtUnblocksCollective: a scripted kill at a collective step
// fails the killed rank with ErrKilled and unwinds all peers.
func TestKillAtUnblocksCollective(t *testing.T) {
	const size, killed = 4, 3
	w := NewWorld(size)
	w.InjectFaults(NewFaultPlan().KillAt(killed, 1))
	errsByRank := make([]error, size)
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		errsByRank[c.Rank()] = func() error {
			if err := c.Barrier(); err != nil { // step 0
				return err
			}
			return c.AllreduceSum(make([]float64, 16)) // step 1: rank 3 dies
		}()
		return errsByRank[c.Rank()]
	})
	if !errors.Is(err, ErrKilled) {
		t.Fatalf("Run error = %v, want ErrKilled cause", err)
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != killed {
		t.Fatalf("want RankFailedError naming rank %d, got %v", killed, err)
	}
	for r := 0; r < size; r++ {
		if errsByRank[r] == nil {
			t.Fatalf("rank %d finished cleanly despite the kill", r)
		}
	}
}

// TestKillFiresOnlyOnce: a consumed kill does not re-fire on a new
// world sharing the plan (the elastic-restart contract).
func TestKillFiresOnlyOnce(t *testing.T) {
	plan := NewFaultPlan().KillAt(1, 0)
	w1 := NewWorld(3)
	w1.InjectFaults(plan)
	if err := runBounded(t, w1, 10*time.Second, func(c *Comm) error {
		return c.Barrier()
	}); !errors.Is(err, ErrKilled) {
		t.Fatalf("first world: %v", err)
	}
	w2 := NewWorld(2)
	w2.InjectFaults(plan)
	if err := runBounded(t, w2, 10*time.Second, func(c *Comm) error {
		return c.Barrier()
	}); err != nil {
		t.Fatalf("second world should survive: %v", err)
	}
}

// TestDelayAtStallsPeers: a scripted delay holds every other rank at
// the barrier for at least the injected duration — the deterministic
// straggler the paper's broadcast observation is built on.
func TestDelayAtStallsPeers(t *testing.T) {
	const size = 3
	const delay = 50 * time.Millisecond
	w := NewWorld(size)
	w.InjectFaults(NewFaultPlan().DelayAt(size-1, 0, delay))
	waits := make([]time.Duration, size)
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		start := time.Now()
		if err := c.Barrier(); err != nil {
			return err
		}
		waits[c.Rank()] = time.Since(start)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < size-1; r++ {
		if waits[r] < delay*8/10 {
			t.Fatalf("rank %d barrier wait %v, want ≈%v (straggler delay)", r, waits[r], delay)
		}
	}
}

// TestFailSendAbortsWorld: an injected link failure surfaces as the
// sending rank's failure and unwinds the world.
func TestFailSendAbortsWorld(t *testing.T) {
	w := NewWorld(3)
	w.InjectFaults(NewFaultPlan().FailSend(0, 1, 1))
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		return c.AllreduceSum(make([]float64, 6))
	})
	if !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("Run error = %v, want ErrLinkFailed cause", err)
	}
	var rf *RankFailedError
	if !errors.As(err, &rf) || rf.Rank != 0 {
		t.Fatalf("want RankFailedError naming rank 0, got %v", err)
	}
}

// TestFailSendNth: the failure counts sends on the scripted link only,
// firing on exactly the nth.
func TestFailSendNth(t *testing.T) {
	w := NewWorld(2)
	w.InjectFaults(NewFaultPlan().FailSend(0, 1, 2))
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		if c.Rank() == 0 {
			if err := c.Send(1, tagP2P, []float64{1}); err != nil {
				t.Errorf("first send failed early: %v", err)
				return err
			}
			return c.Send(1, tagP2P, []float64{2})
		}
		if _, err := c.Recv(0, tagP2P); err != nil {
			return err
		}
		_, err := c.Recv(0, tagP2P)
		return err
	})
	if !errors.Is(err, ErrLinkFailed) {
		t.Fatalf("Run error = %v", err)
	}
}

// TestHealthyWorldUnaffectedByEmptyPlan: injection with no scripted
// faults must be a no-op.
func TestHealthyWorldUnaffectedByEmptyPlan(t *testing.T) {
	w := NewWorld(4)
	w.InjectFaults(NewFaultPlan())
	err := runBounded(t, w, 10*time.Second, func(c *Comm) error {
		data := []float64{float64(c.Rank())}
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		if data[0] != 1.5 {
			t.Errorf("mean = %v", data[0])
		}
		return c.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
}
