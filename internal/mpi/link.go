package mpi

import (
	"errors"
	"fmt"
	"io"
	"sort"
	"sync/atomic"
	"time"

	"candle/internal/transport"
)

// This file is the link layer under World: every ordered (src, dst)
// rank pair communicates over a rankLink. Pairs hosted by one process
// use chanLink — a buffered Go channel with exactly the semantics the
// substrate has always had, so the in-process fast path stays
// zero-alloc and select-based. Pairs that cross a process boundary use
// an outLink/inLink pair built over a transport.Conn: the sending side
// runs a writer goroutine that frames packets onto the wire (coalescing
// bursts into one flush), the receiving side runs a reader goroutine
// that decodes frames into a slab ring and feeds a channel with the
// same capacity as a local link. Failure semantics carry across the
// boundary: a world abort turns into an abort frame on every outgoing
// link, an unexpected EOF (peer process died) turns into a local Abort
// with ErrPeerLost, so a killed OS process surfaces to every peer as
// the same typed *RankFailedError an in-process kill produces.

// ErrPeerLost is the cause recorded when a cross-process link drops
// without the clean done handshake — the peer process crashed or was
// killed.
var ErrPeerLost = errors.New("mpi: peer process lost")

// rankLink is one ordered rank-pair link. send enqueues a packet unless
// the world aborts first; recv dequeues the next packet, preferring
// already-delivered packets over a concurrent abort (drain preference)
// so in-flight protocol steps complete.
type rankLink interface {
	send(p packet, done <-chan struct{}) bool
	recv(done <-chan struct{}) (packet, bool)
}

// chanLink is the in-process link: a buffered channel, FIFO per pair.
type chanLink struct {
	ch chan packet
}

func (l chanLink) send(p packet, done <-chan struct{}) bool {
	select {
	case l.ch <- p:
		return true
	case <-done:
		return false
	}
}

func (l chanLink) recv(done <-chan struct{}) (packet, bool) {
	select {
	case p := <-l.ch:
		return p, true
	case <-done:
		select {
		case p := <-l.ch:
			return p, true
		default:
			return packet{}, false
		}
	}
}

// Pair names one ordered rank pair, the key for cross-process links.
type Pair struct {
	Src, Dst int
}

// outLink is the sending half of a cross-process link. Packets queue on
// out (same capacity as a local link, so the scratch-slab reuse
// argument is unchanged: at most linkBuffer packets queued plus one
// being framed is linkBuffer+1 outstanding slabs, and the ring holds
// linkBuffer+2); a writer goroutine frames them onto the conn,
// coalescing back-to-back packets into a single flush.
type outLink struct {
	w        *World
	src, dst int
	conn     transport.Conn
	out      chan packet
}

func (l *outLink) send(p packet, done <-chan struct{}) bool {
	select {
	case l.out <- p:
		return true
	case <-done:
		return false
	}
}

func (l *outLink) recv(<-chan struct{}) (packet, bool) {
	panic(fmt.Sprintf("mpi: recv on outgoing link from rank %d", l.src))
}

// writer drains the out queue onto the wire. It exits on a closed queue
// (clean finish: done frame) or a world abort (abort frame naming the
// originating rank), flushing either way so the peer sees the outcome.
func (l *outLink) writer() {
	defer l.w.remoteWG.Done()
	var f transport.Frame
	writeOne := func(p packet) bool {
		f.Kind, f.Tag, f.F64, f.Raw = transport.KindData, int32(p.tag), p.data, nil
		if err := l.conn.SendFrame(&f); err != nil {
			// A dead write means the receiving process is gone; blame
			// the remote end, same classification the reader's EOF gets.
			if !l.w.closing.Load() {
				l.w.Abort(l.dst, "send", fmt.Errorf("%w: write %d->%d: %v", ErrPeerLost, l.src, l.dst, err))
			}
			return false
		}
		return true
	}
	finish := func() {
		ctl := transport.Frame{Kind: transport.KindDone}
		if fail := l.w.failure.Load(); fail != nil {
			ctl = transport.Frame{Kind: transport.KindAbort, Raw: transport.AbortPayload(fail.Rank, fail.Cause.Error())}
		}
		l.conn.SendFrame(&ctl)
		l.conn.Flush()
	}
	for {
		select {
		case p, ok := <-l.out:
			if !ok {
				finish()
				return
			}
			if !writeOne(p) {
				return
			}
			// Coalesce: frame everything already queued, then flush once.
		drain:
			for {
				select {
				case p, ok := <-l.out:
					if !ok {
						finish()
						return
					}
					if !writeOne(p) {
						return
					}
				default:
					break drain
				}
			}
			if err := l.conn.Flush(); err != nil {
				if !l.w.closing.Load() {
					l.w.Abort(l.dst, "send", fmt.Errorf("%w: flush %d->%d: %v", ErrPeerLost, l.src, l.dst, err))
				}
				return
			}
		case <-l.w.done:
			finish()
			return
		}
	}
}

// inLink is the receiving half of a cross-process link. A reader
// goroutine decodes frames into a ring of scratchSlabs reusable frames
// and feeds the in channel (capacity linkBuffer), which gives the
// receiving side the same buffer depth and slab-reuse safety margin as
// a local link: for the reader to overwrite slab m the consumer must
// already have consumed packet m (see the scratchSlabs comment in
// mpi.go — the identical argument, mirrored).
type inLink struct {
	w    *World
	src  int
	conn transport.Conn
	in   chan packet
}

func (l *inLink) send(packet, <-chan struct{}) bool {
	panic(fmt.Sprintf("mpi: send on incoming link from rank %d", l.src))
}

func (l *inLink) recv(done <-chan struct{}) (packet, bool) {
	select {
	case p, ok := <-l.in:
		if !ok {
			// The peer finished cleanly while this rank still expected
			// data: a schedule divergence, surfaced as a lost peer.
			l.w.Abort(l.src, "recv", ErrPeerLost)
			return packet{}, false
		}
		return p, true
	case <-done:
		select {
		case p, ok := <-l.in:
			if ok {
				return p, true
			}
		default:
		}
		return packet{}, false
	}
}

// reader decodes frames off the wire into the in channel until a done
// frame (clean close), an abort frame (remote failure, re-raised
// locally), or a broken stream (peer lost).
func (l *inLink) reader() {
	defer l.w.remoteWG.Done()
	var frames [scratchSlabs]transport.Frame
	next := 0
	for {
		f := &frames[next]
		err := l.conn.RecvFrame(f)
		if err != nil {
			if !l.w.closing.Load() {
				if err == io.EOF {
					err = ErrPeerLost
				}
				l.w.Abort(l.src, "recv", err)
			}
			return
		}
		switch f.Kind {
		case transport.KindDone:
			close(l.in)
			return
		case transport.KindAbort:
			rank, msg, perr := transport.ParseAbort(f.Raw)
			if perr != nil {
				l.w.Abort(l.src, "recv", perr)
				return
			}
			l.w.Abort(rank, "recv", remoteCause(msg))
			return
		case transport.KindData:
			select {
			case l.in <- packet{tag: int(f.Tag), data: f.F64}:
				next++
				if next == scratchSlabs {
					next = 0
				}
			case <-l.w.done:
				return
			}
		default:
			l.w.Abort(l.src, "recv", fmt.Errorf("unexpected %d frame on data link", f.Kind))
			return
		}
	}
}

// remoteCause maps a wire-carried failure message back to the local
// sentinel it came from, so errors.Is classification (e.g. ErrKilled
// for an injected kill) works across process boundaries.
func remoteCause(msg string) error {
	switch msg {
	case ErrKilled.Error():
		return ErrKilled
	case ErrLinkFailed.Error():
		return ErrLinkFailed
	case ErrPeerLost.Error():
		return ErrPeerLost
	}
	return errors.New(msg)
}

// NewPartialWorld creates a world of the given total size in which this
// process hosts only the local ranks. conns carries one ready (post-
// handshake) transport.Conn per ordered rank pair that crosses the
// process boundary: for every local src and remote dst the conn this
// side dialed, and for every remote src and local dst the conn this
// side accepted. Reader and writer goroutines start immediately; Run
// tears the links down when the local ranks finish.
func NewPartialWorld(size int, local []int, conns map[Pair]transport.Conn) (*World, error) {
	if size <= 0 {
		return nil, fmt.Errorf("mpi: world size must be positive, got %d", size)
	}
	if len(local) == 0 {
		return nil, errors.New("mpi: partial world with no local ranks")
	}
	sorted := append([]int(nil), local...)
	sort.Ints(sorted)
	isLocal := make([]bool, size)
	for _, r := range sorted {
		if r < 0 || r >= size {
			return nil, fmt.Errorf("mpi: local rank %d outside world of size %d", r, size)
		}
		if isLocal[r] {
			return nil, fmt.Errorf("mpi: local rank %d listed twice", r)
		}
		isLocal[r] = true
	}

	w := &World{
		size:     size,
		links:    make([][]rankLink, size),
		scratch:  make([][]scratchRing, size),
		segElems: defaultSegmentElems,
		endpoint: make([]atomic.Int64, size),
		done:     make(chan struct{}),
		local:    sorted,
	}
	for s := 0; s < size; s++ {
		w.links[s] = make([]rankLink, size)
		w.scratch[s] = make([]scratchRing, size)
	}
	for s := 0; s < size; s++ {
		for d := 0; d < size; d++ {
			if s == d {
				continue
			}
			switch {
			case isLocal[s] && isLocal[d]:
				w.links[s][d] = chanLink{ch: make(chan packet, linkBuffer)}
			case isLocal[s]:
				conn, ok := conns[Pair{Src: s, Dst: d}]
				if !ok {
					return nil, fmt.Errorf("mpi: missing outgoing conn for link %d->%d", s, d)
				}
				o := &outLink{w: w, src: s, dst: d, conn: conn, out: make(chan packet, linkBuffer)}
				w.links[s][d] = o
				w.outs = append(w.outs, o)
			case isLocal[d]:
				conn, ok := conns[Pair{Src: s, Dst: d}]
				if !ok {
					return nil, fmt.Errorf("mpi: missing incoming conn for link %d->%d", s, d)
				}
				i := &inLink{w: w, src: s, conn: conn, in: make(chan packet, linkBuffer)}
				w.links[s][d] = i
				w.ins = append(w.ins, i)
			}
			// Remote-remote pairs stay nil: no local Comm ever touches
			// them, and the hosting processes own those links.
		}
	}
	for _, o := range w.outs {
		w.remoteWG.Add(1)
		go o.writer()
	}
	for _, i := range w.ins {
		w.remoteWG.Add(1)
		go i.reader()
	}
	return w, nil
}

// finishTimeout bounds how long teardown waits for the remote link
// goroutines before force-closing their conns to unwedge them.
const finishTimeout = 3 * time.Second

// finishRemote tears down the cross-process links after the local
// ranks finish. On a clean run the out queues close, writers emit done
// frames, and readers exit on the peers' done frames; after an abort
// the writers have already emitted abort frames via the world's done
// channel. Either way a peer that never answers cannot wedge teardown:
// after finishTimeout the conns are force-closed, which unblocks any
// goroutine stuck in a read or write.
func (w *World) finishRemote() {
	if len(w.outs) == 0 && len(w.ins) == 0 {
		return
	}
	for _, o := range w.outs {
		close(o.out)
	}
	finished := make(chan struct{})
	go func() {
		w.remoteWG.Wait()
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(finishTimeout):
		w.closing.Store(true)
		w.closeConns()
		<-finished
	}
	w.closing.Store(true)
	w.closeConns()
}

func (w *World) closeConns() {
	for _, o := range w.outs {
		o.conn.Close()
	}
	for _, i := range w.ins {
		i.conn.Close()
	}
}
