// Package mpi is an in-process message-passing substrate modelled on
// the MPI concepts Horovod is built from: a World of ranks, point-to-
// point Send/Recv, and the collectives Broadcast (binomial tree),
// Allreduce (ring), Allgather (ring), and Barrier (dissemination).
//
// Ranks are goroutines; links are buffered Go channels, one per
// ordered (src, dst) pair, so messages between a pair are FIFO exactly
// as MPI guarantees for a single communicator. The collectives are the
// real algorithms — the ring allreduce is the same
// reduce-scatter/allgather scheme NCCL and Baidu's
// tensorflow-allreduce use — so contention, pipelining, and straggler
// effects genuinely occur rather than being merely modelled.
//
// The substrate has a real failure domain (fault.go): a rank that
// errors or panics aborts the world, every blocked operation unwinds
// with a *RankFailedError naming the originating rank, and a FaultPlan
// can script deterministic kills, delays, and link failures.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// packet is one point-to-point message.
type packet struct {
	tag  int
	data []float64
}

// World owns the links for a fixed number of ranks.
type World struct {
	size  int
	links [][]chan packet // links[src][dst]

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	// endpoint[r] counts payload bytes entering or leaving rank r —
	// the per-endpoint network load that distinguishes a centralized
	// parameter server (root handles O(N·M)) from a ring allreduce
	// (every rank handles O(M)).
	endpoint []atomic.Int64

	// done closes when the world aborts; failure records the first
	// rank to fail (see fault.go).
	done      chan struct{}
	abortOnce sync.Once
	failure   atomic.Pointer[RankFailedError]
	// faults, when non-nil, scripts deterministic failures.
	faults *FaultPlan
}

// linkBuffer is the per-link channel capacity. Collective schedules
// never have more than a couple of outstanding messages per link; a
// small buffer keeps senders from blocking in the common case without
// hiding backpressure entirely.
const linkBuffer = 8

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{
		size:     size,
		links:    make([][]chan packet, size),
		endpoint: make([]atomic.Int64, size),
		done:     make(chan struct{}),
	}
	for s := 0; s < size; s++ {
		w.links[s] = make([]chan packet, size)
		for d := 0; d < size; d++ {
			if s != d {
				w.links[s][d] = make(chan packet, linkBuffer)
			}
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total float64 payload bytes sent so far
// (8 bytes per element), across all ranks.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total point-to-point messages sent so far.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// EndpointBytes returns the payload bytes that entered or left the
// given rank.
func (w *World) EndpointBytes(rank int) int64 { return w.endpoint[rank].Load() }

// MaxEndpointBytes returns the heaviest per-rank network load — the
// hotspot metric for centralized communication patterns.
func (w *World) MaxEndpointBytes() int64 {
	var mx int64
	for r := range w.endpoint {
		if b := w.endpoint[r].Load(); b > mx {
			mx = b
		}
	}
	return mx
}

// Comm returns the communicator endpoint for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run executes f once per rank, each in its own goroutine, and waits
// for all of them. A rank that returns an error or panics aborts the
// world, so peers blocked in Send/Recv or a collective unwind within
// one collective step instead of deadlocking. Run returns the
// originating failure (as a *RankFailedError wrapping the rank's
// error), never the cascade errors the other ranks observed.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.Abort(rank, "run", errs[rank])
				}
			}()
			errs[rank] = f(w.Comm(rank))
			if errs[rank] != nil {
				// If the rank is merely reporting the cascade of an
				// earlier abort, the sticky record already names the
				// origin and this call is a no-op.
				w.Abort(rank, "run", errs[rank])
			}
		}(r)
	}
	wg.Wait()
	if fail := w.failure.Load(); fail != nil {
		return fail
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's endpoint into a World. A Comm must only be used
// from the goroutine that owns the rank.
type Comm struct {
	world *World
	rank  int
	// ops counts collective operations entered, the "step" unit
	// FaultPlan kills and delays are keyed by.
	ops int
}

// Rank returns this endpoint's rank (hvd.rank()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size (hvd.size()).
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. The slice is sent by
// reference; collective implementations copy where aliasing would be
// unsafe, and callers doing raw point-to-point sends must not mutate
// the slice until the receiver is done with it (as with MPI buffers).
// Send fails with a *RankFailedError when the world has aborted or a
// scripted link fault fires, instead of blocking forever.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst == c.rank {
		panic("mpi: send to self")
	}
	w := c.world
	if p := w.faults; p != nil && p.takeFailSend(c.rank, dst) {
		w.Abort(c.rank, "send", ErrLinkFailed)
		return &RankFailedError{Rank: c.rank, Op: "send", Cause: ErrLinkFailed}
	}
	select {
	case <-w.done:
		return w.abortError("send")
	default:
	}
	select {
	case w.links[c.rank][dst] <- packet{tag: tag, data: data}:
	case <-w.done:
		return w.abortError("send")
	}
	w.msgsSent.Add(1)
	payload := int64(8 * len(data))
	w.bytesSent.Add(payload)
	w.endpoint[c.rank].Add(payload)
	w.endpoint[dst].Add(payload)
	return nil
}

// Recv blocks for the next message from src and returns its payload,
// or a *RankFailedError if the world aborts first. It panics if the
// tag does not match, which in a correct collective schedule can only
// mean a protocol bug.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if src == c.rank {
		panic("mpi: recv from self")
	}
	w := c.world
	var p packet
	select {
	case p = <-w.links[src][c.rank]:
	case <-w.done:
		// Drain preference: a packet already delivered should win over
		// a concurrent abort so in-flight protocol steps complete.
		select {
		case p = <-w.links[src][c.rank]:
		default:
			return nil, w.abortError("recv")
		}
	}
	if p.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, p.tag))
	}
	return p.data, nil
}

// Collective message tags. Every collective uses its own tag space so
// a schedule bug surfaces as a tag panic instead of silent corruption.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagRing    = -3
	tagGather  = -4
	tagP2P     = 0
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ⌈log2 n⌉ rounds) or the world aborts.
func (c *Comm) Barrier() error {
	if err := c.enterOp("barrier"); err != nil {
		return err
	}
	n := c.world.size
	for dist := 1; dist < n; dist <<= 1 {
		if err := c.Send((c.rank+dist)%n, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.Recv((c.rank-dist+n)%n, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast distributes root's data to every rank in place using a
// binomial tree (the MPI_Bcast algorithm). Every rank must pass a
// slice of the same length; non-root contents are overwritten.
func (c *Comm) Broadcast(root int, data []float64) error {
	if err := c.enterOp("broadcast"); err != nil {
		return err
	}
	n := c.world.size
	if n == 1 {
		return nil
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.rank - mask + n) % n
			got, err := c.Recv(src, tagBcast)
			if err != nil {
				return err
			}
			if len(got) != len(data) {
				panic(fmt.Sprintf("mpi: broadcast length mismatch %d != %d", len(got), len(data)))
			}
			copy(data, got)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.rank + mask) % n
			// Copy so later local mutation cannot race the receiver.
			buf := make([]float64, len(data))
			copy(buf, data)
			if err := c.Send(dst, tagBcast, buf); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// chunkBounds splits length l into n contiguous chunks as evenly as
// possible and returns the n+1 offsets.
func chunkBounds(l, n int) []int {
	off := make([]int, n+1)
	base, rem := l/n, l%n
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}

// AllreduceSum sums data element-wise across all ranks in place using
// the ring algorithm: a reduce-scatter phase followed by an allgather
// phase, each of n−1 steps moving 1/n of the buffer — the same
// bandwidth-optimal schedule NCCL uses.
func (c *Comm) AllreduceSum(data []float64) error {
	if err := c.enterOp("allreduce"); err != nil {
		return err
	}
	n := c.world.size
	if n == 1 {
		return nil
	}
	off := chunkBounds(len(data), n)
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n

	// Reduce-scatter: after step s, rank r holds the partial sum of
	// chunk (r-s+n)%n from s+1 ranks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		seg := data[off[sendChunk]:off[sendChunk+1]]
		buf := make([]float64, len(seg))
		copy(buf, seg)
		if err := c.Send(next, tagRing, buf); err != nil {
			return err
		}
		got, err := c.Recv(prev, tagRing)
		if err != nil {
			return err
		}
		dst := data[off[recvChunk]:off[recvChunk+1]]
		for i, v := range got {
			dst[i] += v
		}
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank + 1 - s + n) % n
		recvChunk := (c.rank - s + n) % n
		seg := data[off[sendChunk]:off[sendChunk+1]]
		buf := make([]float64, len(seg))
		copy(buf, seg)
		if err := c.Send(next, tagRing, buf); err != nil {
			return err
		}
		got, err := c.Recv(prev, tagRing)
		if err != nil {
			return err
		}
		copy(data[off[recvChunk]:off[recvChunk+1]], got)
	}
	return nil
}

// AllreduceMean averages data element-wise across all ranks in place —
// the operation Horovod's DistributedOptimizer applies to gradients.
func (c *Comm) AllreduceMean(data []float64) error {
	if err := c.AllreduceSum(data); err != nil {
		return err
	}
	inv := 1 / float64(c.world.size)
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Allgather collects each rank's (equal-length) contribution and
// returns them indexed by rank, using a ring schedule.
func (c *Comm) Allgather(mine []float64) ([][]float64, error) {
	if err := c.enterOp("allgather"); err != nil {
		return nil, err
	}
	n := c.world.size
	out := make([][]float64, n)
	own := make([]float64, len(mine))
	copy(own, mine)
	out[c.rank] = own
	if n == 1 {
		return out, nil
	}
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n
	cur := own
	curRank := c.rank
	for s := 0; s < n-1; s++ {
		buf := make([]float64, len(cur))
		copy(buf, cur)
		if err := c.Send(next, tagGather, buf); err != nil {
			return nil, err
		}
		got, err := c.Recv(prev, tagGather)
		if err != nil {
			return nil, err
		}
		curRank = (curRank - 1 + n) % n
		out[curRank] = got
		cur = got
	}
	return out, nil
}
