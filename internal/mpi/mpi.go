// Package mpi is an in-process message-passing substrate modelled on
// the MPI concepts Horovod is built from: a World of ranks, point-to-
// point Send/Recv, and the collectives Broadcast (binomial tree),
// Allreduce (ring), Allgather (ring), and Barrier (dissemination).
//
// Ranks are goroutines; links are FIFO per ordered (src, dst) pair
// exactly as MPI guarantees for a single communicator. Pairs hosted in
// one process use buffered Go channels; a partial world
// (NewPartialWorld) hosts a subset of ranks and carries the links that
// cross the process boundary over internal/transport connections (Unix
// sockets or TCP), so the same collectives run unchanged across OS
// processes. The collectives are the real algorithms — the ring
// allreduce is the same reduce-scatter/allgather scheme NCCL and
// Baidu's tensorflow-allreduce use — so contention, pipelining, and
// straggler effects genuinely occur rather than being merely modelled.
//
// The substrate has a real failure domain (fault.go): a rank that
// errors or panics aborts the world, every blocked operation unwinds
// with a *RankFailedError naming the originating rank, and a FaultPlan
// can script deterministic kills, delays, and link failures.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// packet is one point-to-point message.
type packet struct {
	tag  int
	data []float64
}

// World owns the links for a fixed number of ranks. A world is either
// complete (NewWorld: every rank lives in this process, links are
// channels) or partial (NewPartialWorld: this process hosts a subset of
// ranks and the links that cross the process boundary run over a
// transport.Conn each — see link.go).
type World struct {
	size  int
	links [][]rankLink // links[src][dst]
	// local lists the ranks hosted by this process, ascending; nil
	// means all of them.
	local []int
	// remote link bookkeeping for partial worlds (see link.go).
	outs     []*outLink
	ins      []*inLink
	remoteWG sync.WaitGroup
	closing  atomic.Bool
	// scratch[src][dst] is the reusable send-buffer ring for the
	// (src,dst) link; collectives copy outgoing payloads into it
	// instead of allocating per message (see scratchRing).
	scratch [][]scratchRing
	// segElems is the pipelined-ring segment size for AllreduceSum (in
	// float64 elements); see SetSegmentElems.
	segElems int

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	// endpoint[r] counts payload bytes entering or leaving rank r —
	// the per-endpoint network load that distinguishes a centralized
	// parameter server (root handles O(N·M)) from a ring allreduce
	// (every rank handles O(M)).
	endpoint []atomic.Int64

	// done closes when the world aborts; failure records the first
	// rank to fail (see fault.go).
	done      chan struct{}
	abortOnce sync.Once
	failure   atomic.Pointer[RankFailedError]
	// faults, when non-nil, scripts deterministic failures.
	faults *FaultPlan
}

// linkBuffer is the per-link channel capacity. Collective schedules
// never have more than a couple of outstanding messages per link; a
// small buffer keeps senders from blocking in the common case without
// hiding backpressure entirely.
const linkBuffer = 8

// scratchSlabs is the length of each link's send-buffer ring. A slab
// is reused after scratchSlabs more sends on the same link. For send
// m+scratchSlabs to be accepted, the link channel (capacity
// linkBuffer) must have delivered message m+2, and a receiver fully
// consumes message m before pulling m+1 (every collective copies or
// reduces a payload before its next Recv on that link), so
// linkBuffer+2 slabs guarantee no slab is overwritten while a receiver
// can still read it.
const scratchSlabs = linkBuffer + 2

// scratchRing rotates reusable payload buffers for one ordered link,
// making collective sends allocation-free in steady state. Only the
// source rank's goroutine touches its rings.
type scratchRing struct {
	bufs [scratchSlabs][]float64
	next int
}

// defaultSegmentElems is the pipelined-ring segment size: allreduces
// larger than this are split into up to maxSegments independently
// ring-reduced segments whose messages interleave on the links, so a
// rank can be receiving one segment while its later segments are
// still in flight.
const defaultSegmentElems = 32 << 10 // 32Ki float64 = 256 KB

// maxSegments caps how many segments are in flight. It must stay at or
// below linkBuffer/2 so a rank's whole send phase fits in the link
// channel even when its neighbor is a full phase behind, keeping the
// schedule deadlock-free.
const maxSegments = 4

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{
		size:     size,
		links:    make([][]rankLink, size),
		scratch:  make([][]scratchRing, size),
		segElems: defaultSegmentElems,
		endpoint: make([]atomic.Int64, size),
		done:     make(chan struct{}),
	}
	for s := 0; s < size; s++ {
		w.links[s] = make([]rankLink, size)
		w.scratch[s] = make([]scratchRing, size)
		for d := 0; d < size; d++ {
			if s != d {
				w.links[s][d] = chanLink{ch: make(chan packet, linkBuffer)}
			}
		}
	}
	return w
}

// SetSegmentElems overrides the pipelined-ring segment size for
// AllreduceSum (in float64 elements). Zero or negative restores the
// default. Call before Run; the setting applies world-wide so every
// rank computes the same schedule.
func (w *World) SetSegmentElems(n int) {
	if n <= 0 {
		n = defaultSegmentElems
	}
	w.segElems = n
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total float64 payload bytes sent so far
// (8 bytes per element), across all ranks.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total point-to-point messages sent so far.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// EndpointBytes returns the payload bytes that entered or left the
// given rank.
func (w *World) EndpointBytes(rank int) int64 { return w.endpoint[rank].Load() }

// MaxEndpointBytes returns the heaviest per-rank network load — the
// hotspot metric for centralized communication patterns.
func (w *World) MaxEndpointBytes() int64 {
	var mx int64
	for r := range w.endpoint {
		if b := w.endpoint[r].Load(); b > mx {
			mx = b
		}
	}
	return mx
}

// Comm returns the communicator endpoint for one rank, which must be
// hosted by this process.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", rank, w.size))
	}
	if !w.isLocal(rank) {
		panic(fmt.Sprintf("mpi: rank %d is not hosted by this process (local: %v)", rank, w.local))
	}
	return &Comm{world: w, rank: rank}
}

// LocalRanks returns the ranks hosted by this process, ascending.
func (w *World) LocalRanks() []int {
	if w.local == nil {
		all := make([]int, w.size)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return append([]int(nil), w.local...)
}

func (w *World) isLocal(rank int) bool {
	if w.local == nil {
		return true
	}
	for _, r := range w.local {
		if r == rank {
			return true
		}
	}
	return false
}

// Run executes f once per locally hosted rank, each in its own
// goroutine, and waits for all of them. A rank that returns an error or
// panics aborts the world, so peers blocked in Send/Recv or a
// collective unwind within one collective step instead of deadlocking.
// Run returns the originating failure (as a *RankFailedError wrapping
// the rank's error), never the cascade errors the other ranks observed.
// For a partial world, Run also tears down the cross-process links
// when the local ranks finish: done frames on a clean exit, abort
// frames on a failure, so the peer processes observe the same outcome.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for _, r := range w.LocalRanks() {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
					w.Abort(rank, "run", errs[rank])
				}
			}()
			errs[rank] = f(w.Comm(rank))
			if errs[rank] != nil {
				// If the rank is merely reporting the cascade of an
				// earlier abort, the sticky record already names the
				// origin and this call is a no-op.
				w.Abort(rank, "run", errs[rank])
			}
		}(r)
	}
	wg.Wait()
	w.finishRemote()
	if fail := w.failure.Load(); fail != nil {
		return fail
	}
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's endpoint into a World. A Comm must only be used
// by one goroutine at a time: either a single owning goroutine, or
// several goroutines whose operations are totally ordered by explicit
// synchronization (as the Horovod overlap coordinator does with its
// submit/drain handshake).
type Comm struct {
	world *World
	rank  int
	// ops counts collective operations entered, the "step" unit
	// FaultPlan kills and delays are keyed by.
	ops int
}

// Rank returns this endpoint's rank (hvd.rank()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size (hvd.size()).
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. The slice is sent by
// reference; collective implementations copy where aliasing would be
// unsafe, and callers doing raw point-to-point sends must not mutate
// the slice until the receiver is done with it (as with MPI buffers).
// Send fails with a *RankFailedError when the world has aborted or a
// scripted link fault fires, instead of blocking forever.
func (c *Comm) Send(dst, tag int, data []float64) error {
	if dst == c.rank {
		panic("mpi: send to self")
	}
	w := c.world
	if p := w.faults; p != nil && p.takeFailSend(c.rank, dst) {
		w.Abort(c.rank, "send", ErrLinkFailed)
		return &RankFailedError{Rank: c.rank, Op: "send", Cause: ErrLinkFailed}
	}
	select {
	case <-w.done:
		return w.abortError("send")
	default:
	}
	if !w.links[c.rank][dst].send(packet{tag: tag, data: data}, w.done) {
		return w.abortError("send")
	}
	w.msgsSent.Add(1)
	payload := int64(8 * len(data))
	w.bytesSent.Add(payload)
	w.endpoint[c.rank].Add(payload)
	w.endpoint[dst].Add(payload)
	return nil
}

// Recv blocks for the next message from src and returns its payload,
// or a *RankFailedError if the world aborts first. It panics if the
// tag does not match, which in a correct collective schedule can only
// mean a protocol bug.
func (c *Comm) Recv(src, tag int) ([]float64, error) {
	if src == c.rank {
		panic("mpi: recv from self")
	}
	w := c.world
	p, ok := w.links[src][c.rank].recv(w.done)
	if !ok {
		return nil, w.abortError("recv")
	}
	if p.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, p.tag))
	}
	return p.data, nil
}

// Collective message tags. Every collective uses its own tag space so
// a schedule bug surfaces as a tag panic instead of silent corruption.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagRing    = -3
	tagGather  = -4
	tagP2P     = 0
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ⌈log2 n⌉ rounds) or the world aborts.
func (c *Comm) Barrier() error {
	if err := c.enterOp("barrier"); err != nil {
		return err
	}
	n := c.world.size
	for dist := 1; dist < n; dist <<= 1 {
		if err := c.Send((c.rank+dist)%n, tagBarrier, nil); err != nil {
			return err
		}
		if _, err := c.Recv((c.rank-dist+n)%n, tagBarrier); err != nil {
			return err
		}
	}
	return nil
}

// Broadcast distributes root's data to every rank in place using a
// binomial tree (the MPI_Bcast algorithm). Every rank must pass a
// slice of the same length; non-root contents are overwritten.
func (c *Comm) Broadcast(root int, data []float64) error {
	if err := c.enterOp("broadcast"); err != nil {
		return err
	}
	n := c.world.size
	if n == 1 {
		return nil
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.rank - mask + n) % n
			got, err := c.Recv(src, tagBcast)
			if err != nil {
				return err
			}
			if len(got) != len(data) {
				panic(fmt.Sprintf("mpi: broadcast length mismatch %d != %d", len(got), len(data)))
			}
			copy(data, got)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.rank + mask) % n
			// Send through link scratch so later local mutation cannot
			// race the receiver and no per-message buffer is allocated.
			if err := c.sendCopy(dst, tagBcast, data); err != nil {
				return err
			}
		}
		mask >>= 1
	}
	return nil
}

// chunkBounds splits length l into n contiguous chunks as evenly as
// possible and returns the n+1 offsets.
func chunkBounds(l, n int) []int {
	off := make([]int, n+1)
	for i := 0; i <= n; i++ {
		off[i] = chunkOff(l, n, i)
	}
	return off
}

// chunkOff is the start offset of chunk i when length l is split into
// n contiguous chunks as evenly as possible (the first l%n chunks get
// one extra element). chunkOff(l, n, n) == l.
func chunkOff(l, n, i int) int {
	base, rem := l/n, l%n
	if i <= rem {
		return i * (base + 1)
	}
	return rem*(base+1) + (i-rem)*base
}

// scratchFor returns the next reusable slab of length n for sends to
// dst, growing it when needed. Steady-state collectives therefore
// allocate nothing: each link cycles through scratchSlabs buffers that
// reach their high-water size after the first few operations.
func (c *Comm) scratchFor(dst, n int) []float64 {
	r := &c.world.scratch[c.rank][dst]
	buf := r.bufs[r.next]
	if cap(buf) < n {
		buf = make([]float64, n)
	}
	buf = buf[:n]
	r.bufs[r.next] = buf
	r.next++
	if r.next == scratchSlabs {
		r.next = 0
	}
	return buf
}

// sendCopy copies data into a link scratch slab and sends the slab, so
// the caller may mutate data immediately and no per-message buffer is
// allocated. Receivers must fully consume the payload before their
// next Recv on the same link (every collective does).
func (c *Comm) sendCopy(dst, tag int, data []float64) error {
	buf := c.scratchFor(dst, len(data))
	copy(buf, data)
	return c.Send(dst, tag, buf)
}

// segments returns how many pipelined segments an allreduce of l
// elements uses: 1 below the segment size, up to maxSegments above it.
func (w *World) segments(l int) int {
	s := l / w.segElems
	if s < 1 {
		return 1
	}
	if s > maxSegments {
		return maxSegments
	}
	return s
}

// AllreduceSum sums data element-wise across all ranks in place using
// the ring algorithm: a reduce-scatter phase followed by an allgather
// phase, each of n−1 steps moving 1/n of the buffer — the same
// bandwidth-optimal schedule NCCL uses.
//
// Large buffers are split into up to maxSegments segments that are
// ring-reduced concurrently (each ring step sends every segment's
// chunk before receiving any), so multiple messages are in flight per
// link and a receiver can reduce one segment while later ones are
// still queued — the pipelined ring. The segmentation is a pure
// function of the length and world size, so every rank computes the
// same schedule and results stay deterministic for a given world size.
func (c *Comm) AllreduceSum(data []float64) error {
	if err := c.enterOp("allreduce"); err != nil {
		return err
	}
	n := c.world.size
	if n == 1 {
		return nil
	}
	segs := c.world.segments(len(data))
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n

	// Reduce-scatter: within each segment, after step s rank r holds
	// the partial sum of chunk (r-s+n)%n from s+1 ranks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		for g := 0; g < segs; g++ {
			seg := data[chunkOff(len(data), segs, g):chunkOff(len(data), segs, g+1)]
			if err := c.sendCopy(next, tagRing, seg[chunkOff(len(seg), n, sendChunk):chunkOff(len(seg), n, sendChunk+1)]); err != nil {
				return err
			}
		}
		for g := 0; g < segs; g++ {
			got, err := c.Recv(prev, tagRing)
			if err != nil {
				return err
			}
			seg := data[chunkOff(len(data), segs, g):chunkOff(len(data), segs, g+1)]
			dst := seg[chunkOff(len(seg), n, recvChunk):chunkOff(len(seg), n, recvChunk+1)]
			for i, v := range got {
				dst[i] += v
			}
		}
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank + 1 - s + n) % n
		recvChunk := (c.rank - s + n) % n
		for g := 0; g < segs; g++ {
			seg := data[chunkOff(len(data), segs, g):chunkOff(len(data), segs, g+1)]
			if err := c.sendCopy(next, tagRing, seg[chunkOff(len(seg), n, sendChunk):chunkOff(len(seg), n, sendChunk+1)]); err != nil {
				return err
			}
		}
		for g := 0; g < segs; g++ {
			got, err := c.Recv(prev, tagRing)
			if err != nil {
				return err
			}
			seg := data[chunkOff(len(data), segs, g):chunkOff(len(data), segs, g+1)]
			copy(seg[chunkOff(len(seg), n, recvChunk):chunkOff(len(seg), n, recvChunk+1)], got)
		}
	}
	return nil
}

// AllreduceMean averages data element-wise across all ranks in place —
// the operation Horovod's DistributedOptimizer applies to gradients.
func (c *Comm) AllreduceMean(data []float64) error {
	if err := c.AllreduceSum(data); err != nil {
		return err
	}
	inv := 1 / float64(c.world.size)
	for i := range data {
		data[i] *= inv
	}
	return nil
}

// Allgather collects each rank's (equal-length) contribution and
// returns them indexed by rank, using a ring schedule. The result is
// freshly allocated; use AllgatherInto for the allocation-free flat
// variant.
func (c *Comm) Allgather(mine []float64) ([][]float64, error) {
	n := c.world.size
	flat := make([]float64, n*len(mine))
	if err := c.AllgatherInto(mine, flat); err != nil {
		return nil, err
	}
	out := make([][]float64, n)
	for r := 0; r < n; r++ {
		out[r] = flat[r*len(mine) : (r+1)*len(mine)]
	}
	return out, nil
}

// AllgatherInto is the allocation-free Allgather: it gathers every
// rank's (equal-length) contribution into out, which must have
// world-size × len(mine) elements and is laid out by rank. Sends go
// through the link scratch rings, so a warmed steady state performs
// zero allocations.
func (c *Comm) AllgatherInto(mine, out []float64) error {
	if err := c.enterOp("allgather"); err != nil {
		return err
	}
	n := c.world.size
	if len(out) != n*len(mine) {
		panic(fmt.Sprintf("mpi: allgather out length %d != %d ranks × %d", len(out), n, len(mine)))
	}
	block := func(r int) []float64 { return out[r*len(mine) : (r+1)*len(mine)] }
	copy(block(c.rank), mine)
	if n == 1 {
		return nil
	}
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n
	curRank := c.rank
	for s := 0; s < n-1; s++ {
		if err := c.sendCopy(next, tagGather, block(curRank)); err != nil {
			return err
		}
		got, err := c.Recv(prev, tagGather)
		if err != nil {
			return err
		}
		curRank = (curRank - 1 + n) % n
		copy(block(curRank), got)
	}
	return nil
}
