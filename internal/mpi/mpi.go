// Package mpi is an in-process message-passing substrate modelled on
// the MPI concepts Horovod is built from: a World of ranks, point-to-
// point Send/Recv, and the collectives Broadcast (binomial tree),
// Allreduce (ring), Allgather (ring), and Barrier (dissemination).
//
// Ranks are goroutines; links are buffered Go channels, one per
// ordered (src, dst) pair, so messages between a pair are FIFO exactly
// as MPI guarantees for a single communicator. The collectives are the
// real algorithms — the ring allreduce is the same
// reduce-scatter/allgather scheme NCCL and Baidu's
// tensorflow-allreduce use — so contention, pipelining, and straggler
// effects genuinely occur rather than being merely modelled.
package mpi

import (
	"fmt"
	"sync"
	"sync/atomic"
)

// packet is one point-to-point message.
type packet struct {
	tag  int
	data []float64
}

// World owns the links for a fixed number of ranks.
type World struct {
	size  int
	links [][]chan packet // links[src][dst]

	bytesSent atomic.Int64
	msgsSent  atomic.Int64
	// endpoint[r] counts payload bytes entering or leaving rank r —
	// the per-endpoint network load that distinguishes a centralized
	// parameter server (root handles O(N·M)) from a ring allreduce
	// (every rank handles O(M)).
	endpoint []atomic.Int64
}

// linkBuffer is the per-link channel capacity. Collective schedules
// never have more than a couple of outstanding messages per link; a
// small buffer keeps senders from blocking in the common case without
// hiding backpressure entirely.
const linkBuffer = 8

// NewWorld creates a world with the given number of ranks.
func NewWorld(size int) *World {
	if size <= 0 {
		panic(fmt.Sprintf("mpi: world size must be positive, got %d", size))
	}
	w := &World{size: size, links: make([][]chan packet, size), endpoint: make([]atomic.Int64, size)}
	for s := 0; s < size; s++ {
		w.links[s] = make([]chan packet, size)
		for d := 0; d < size; d++ {
			if s != d {
				w.links[s][d] = make(chan packet, linkBuffer)
			}
		}
	}
	return w
}

// Size returns the number of ranks.
func (w *World) Size() int { return w.size }

// BytesSent returns the total float64 payload bytes sent so far
// (8 bytes per element), across all ranks.
func (w *World) BytesSent() int64 { return w.bytesSent.Load() }

// MessagesSent returns the total point-to-point messages sent so far.
func (w *World) MessagesSent() int64 { return w.msgsSent.Load() }

// EndpointBytes returns the payload bytes that entered or left the
// given rank.
func (w *World) EndpointBytes(rank int) int64 { return w.endpoint[rank].Load() }

// MaxEndpointBytes returns the heaviest per-rank network load — the
// hotspot metric for centralized communication patterns.
func (w *World) MaxEndpointBytes() int64 {
	var mx int64
	for r := range w.endpoint {
		if b := w.endpoint[r].Load(); b > mx {
			mx = b
		}
	}
	return mx
}

// Comm returns the communicator endpoint for one rank.
func (w *World) Comm(rank int) *Comm {
	if rank < 0 || rank >= w.size {
		panic(fmt.Sprintf("mpi: rank %d outside world of size %d", rank, w.size))
	}
	return &Comm{world: w, rank: rank}
}

// Run executes f once per rank, each in its own goroutine, and waits
// for all of them. A panic in any rank is recovered and reported as an
// error; the first non-nil error (by rank order) is returned.
func (w *World) Run(f func(c *Comm) error) error {
	errs := make([]error, w.size)
	var wg sync.WaitGroup
	for r := 0; r < w.size; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					errs[rank] = fmt.Errorf("mpi: rank %d panicked: %v", rank, p)
				}
			}()
			errs[rank] = f(w.Comm(rank))
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Comm is one rank's endpoint into a World. A Comm must only be used
// from the goroutine that owns the rank.
type Comm struct {
	world *World
	rank  int
}

// Rank returns this endpoint's rank (hvd.rank()).
func (c *Comm) Rank() int { return c.rank }

// Size returns the world size (hvd.size()).
func (c *Comm) Size() int { return c.world.size }

// Send delivers data to dst with the given tag. The slice is sent by
// reference; collective implementations copy where aliasing would be
// unsafe, and callers doing raw point-to-point sends must not mutate
// the slice until the receiver is done with it (as with MPI buffers).
func (c *Comm) Send(dst, tag int, data []float64) {
	if dst == c.rank {
		panic("mpi: send to self")
	}
	c.world.msgsSent.Add(1)
	payload := int64(8 * len(data))
	c.world.bytesSent.Add(payload)
	c.world.endpoint[c.rank].Add(payload)
	c.world.endpoint[dst].Add(payload)
	c.world.links[c.rank][dst] <- packet{tag: tag, data: data}
}

// Recv blocks for the next message from src and returns its payload.
// It panics if the tag does not match, which in a correct collective
// schedule can only mean a protocol bug.
func (c *Comm) Recv(src, tag int) []float64 {
	if src == c.rank {
		panic("mpi: recv from self")
	}
	p := <-c.world.links[src][c.rank]
	if p.tag != tag {
		panic(fmt.Sprintf("mpi: rank %d expected tag %d from %d, got %d", c.rank, tag, src, p.tag))
	}
	return p.data
}

// Collective message tags. Every collective uses its own tag space so
// a schedule bug surfaces as a tag panic instead of silent corruption.
const (
	tagBarrier = -1
	tagBcast   = -2
	tagRing    = -3
	tagGather  = -4
	tagP2P     = 0
)

// Barrier blocks until every rank has entered it (dissemination
// algorithm, ⌈log2 n⌉ rounds).
func (c *Comm) Barrier() {
	n := c.world.size
	for dist := 1; dist < n; dist <<= 1 {
		c.Send((c.rank+dist)%n, tagBarrier, nil)
		c.Recv((c.rank-dist+n)%n, tagBarrier)
	}
}

// Broadcast distributes root's data to every rank in place using a
// binomial tree (the MPI_Bcast algorithm). Every rank must pass a
// slice of the same length; non-root contents are overwritten.
func (c *Comm) Broadcast(root int, data []float64) {
	n := c.world.size
	if n == 1 {
		return
	}
	rel := (c.rank - root + n) % n
	mask := 1
	for mask < n {
		if rel&mask != 0 {
			src := (c.rank - mask + n) % n
			got := c.Recv(src, tagBcast)
			if len(got) != len(data) {
				panic(fmt.Sprintf("mpi: broadcast length mismatch %d != %d", len(got), len(data)))
			}
			copy(data, got)
			break
		}
		mask <<= 1
	}
	mask >>= 1
	for mask > 0 {
		if rel+mask < n {
			dst := (c.rank + mask) % n
			// Copy so later local mutation cannot race the receiver.
			buf := make([]float64, len(data))
			copy(buf, data)
			c.Send(dst, tagBcast, buf)
		}
		mask >>= 1
	}
}

// chunkBounds splits length l into n contiguous chunks as evenly as
// possible and returns the n+1 offsets.
func chunkBounds(l, n int) []int {
	off := make([]int, n+1)
	base, rem := l/n, l%n
	for i := 0; i < n; i++ {
		sz := base
		if i < rem {
			sz++
		}
		off[i+1] = off[i] + sz
	}
	return off
}

// AllreduceSum sums data element-wise across all ranks in place using
// the ring algorithm: a reduce-scatter phase followed by an allgather
// phase, each of n−1 steps moving 1/n of the buffer — the same
// bandwidth-optimal schedule NCCL uses.
func (c *Comm) AllreduceSum(data []float64) {
	n := c.world.size
	if n == 1 {
		return
	}
	off := chunkBounds(len(data), n)
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n

	// Reduce-scatter: after step s, rank r holds the partial sum of
	// chunk (r-s+n)%n from s+1 ranks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank - s + n) % n
		recvChunk := (c.rank - s - 1 + n) % n
		seg := data[off[sendChunk]:off[sendChunk+1]]
		buf := make([]float64, len(seg))
		copy(buf, seg)
		c.Send(next, tagRing, buf)
		got := c.Recv(prev, tagRing)
		dst := data[off[recvChunk]:off[recvChunk+1]]
		for i, v := range got {
			dst[i] += v
		}
	}
	// Allgather: circulate the fully reduced chunks.
	for s := 0; s < n-1; s++ {
		sendChunk := (c.rank + 1 - s + n) % n
		recvChunk := (c.rank - s + n) % n
		seg := data[off[sendChunk]:off[sendChunk+1]]
		buf := make([]float64, len(seg))
		copy(buf, seg)
		c.Send(next, tagRing, buf)
		got := c.Recv(prev, tagRing)
		copy(data[off[recvChunk]:off[recvChunk+1]], got)
	}
}

// AllreduceMean averages data element-wise across all ranks in place —
// the operation Horovod's DistributedOptimizer applies to gradients.
func (c *Comm) AllreduceMean(data []float64) {
	c.AllreduceSum(data)
	inv := 1 / float64(c.world.size)
	for i := range data {
		data[i] *= inv
	}
}

// Allgather collects each rank's (equal-length) contribution and
// returns them indexed by rank, using a ring schedule.
func (c *Comm) Allgather(mine []float64) [][]float64 {
	n := c.world.size
	out := make([][]float64, n)
	own := make([]float64, len(mine))
	copy(own, mine)
	out[c.rank] = own
	if n == 1 {
		return out
	}
	next := (c.rank + 1) % n
	prev := (c.rank - 1 + n) % n
	cur := own
	curRank := c.rank
	for s := 0; s < n-1; s++ {
		buf := make([]float64, len(cur))
		copy(buf, cur)
		c.Send(next, tagGather, buf)
		got := c.Recv(prev, tagGather)
		curRank = (curRank - 1 + n) % n
		out[curRank] = got
		cur = got
	}
	return out
}
