package mpi_test

import (
	"fmt"
	"sort"
	"sync"

	"candle/internal/mpi"
)

// ExampleWorld shows the Horovod-style collectives: every rank
// contributes its rank+1 and the ring allreduce averages them.
func ExampleWorld() {
	w := mpi.NewWorld(4)
	var mu sync.Mutex
	var results []float64
	err := w.Run(func(c *mpi.Comm) error {
		data := []float64{float64(c.Rank() + 1)} // 1, 2, 3, 4
		if err := c.AllreduceMean(data); err != nil {
			return err
		}
		mu.Lock()
		results = append(results, data[0])
		mu.Unlock()
		return nil
	})
	if err != nil {
		panic(err)
	}
	sort.Float64s(results)
	fmt.Println(results)
	// Output:
	// [2.5 2.5 2.5 2.5]
}
