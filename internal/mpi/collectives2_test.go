package mpi

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestReduceSumsAtRoot(t *testing.T) {
	for _, size := range []int{1, 2, 3, 5, 8, 13} {
		for root := 0; root < size; root += max(1, size/2) {
			w := NewWorld(size)
			got := make([][]float64, size)
			err := w.Run(func(c *Comm) error {
				data := []float64{float64(c.Rank() + 1), float64((c.Rank() + 1) * 10)}
				if err := c.Reduce(root, data); err != nil {
					return err
				}
				got[c.Rank()] = data
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			wantSum := float64(size*(size+1)) / 2
			if got[root][0] != wantSum || got[root][1] != wantSum*10 {
				t.Fatalf("size %d root %d: reduce = %v, want [%v %v]",
					size, root, got[root], wantSum, wantSum*10)
			}
		}
	}
}

func TestGatherAtRoot(t *testing.T) {
	const size = 5
	for root := 0; root < size; root++ {
		w := NewWorld(size)
		var collected [][]float64
		err := w.Run(func(c *Comm) error {
			res, err := c.Gather(root, []float64{float64(c.Rank() * 2)})
			if err != nil {
				return err
			}
			if c.Rank() == root {
				collected = res
			} else if res != nil {
				t.Errorf("non-root rank %d got a result", c.Rank())
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < size; r++ {
			if collected[r][0] != float64(r*2) {
				t.Fatalf("root %d slot %d = %v", root, r, collected[r])
			}
		}
	}
}

func TestScatterDistributesParts(t *testing.T) {
	const size = 4
	w := NewWorld(size)
	err := w.Run(func(c *Comm) error {
		var parts [][]float64
		if c.Rank() == 1 {
			parts = [][]float64{{0, 0}, {1, 10}, {2, 20}, {3, 30}}
		}
		got, err := c.Scatter(1, parts)
		if err != nil {
			return err
		}
		if got[0] != float64(c.Rank()) || got[1] != float64(c.Rank()*10) {
			t.Errorf("rank %d got %v", c.Rank(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestScatterValidatesParts(t *testing.T) {
	w := NewWorld(2)
	err := w.Run(func(c *Comm) error {
		if c.Rank() == 0 {
			defer func() {
				if recover() == nil {
					t.Error("short parts accepted")
				}
				// Unblock rank 1 so the world can drain.
				_ = c.Send(1, tagScatter, []float64{1})
			}()
			_, _ = c.Scatter(0, [][]float64{{1}})
			return nil
		}
		_, err := c.Scatter(0, nil)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: Reduce to root equals AllreduceSum's value at the root.
func TestQuickReduceMatchesAllreduce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(8)
		root := rng.Intn(size)
		length := 1 + rng.Intn(16)
		inputs := make([][]float64, size)
		for r := range inputs {
			inputs[r] = make([]float64, length)
			for i := range inputs[r] {
				inputs[r][i] = rng.NormFloat64()
			}
		}
		reduceOut := make([]float64, length)
		w1 := NewWorld(size)
		if err := w1.Run(func(c *Comm) error {
			data := append([]float64(nil), inputs[c.Rank()]...)
			if err := c.Reduce(root, data); err != nil {
				return err
			}
			if c.Rank() == root {
				copy(reduceOut, data)
			}
			return nil
		}); err != nil {
			return false
		}
		allOut := make([]float64, length)
		w2 := NewWorld(size)
		if err := w2.Run(func(c *Comm) error {
			data := append([]float64(nil), inputs[c.Rank()]...)
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
			if c.Rank() == root {
				copy(allOut, data)
			}
			return nil
		}); err != nil {
			return false
		}
		for i := range reduceOut {
			if math.Abs(reduceOut[i]-allOut[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: Scatter then Gather reconstructs the root's parts.
func TestQuickScatterGatherInverse(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		size := 1 + rng.Intn(7)
		root := rng.Intn(size)
		width := 1 + rng.Intn(5)
		parts := make([][]float64, size)
		for r := range parts {
			parts[r] = make([]float64, width)
			for i := range parts[r] {
				parts[r][i] = rng.NormFloat64()
			}
		}
		var back [][]float64
		w := NewWorld(size)
		if err := w.Run(func(c *Comm) error {
			var in [][]float64
			if c.Rank() == root {
				in = parts
			}
			mine, err := c.Scatter(root, in)
			if err != nil {
				return err
			}
			res, err := c.Gather(root, mine)
			if err != nil {
				return err
			}
			if c.Rank() == root {
				back = res
			}
			return nil
		}); err != nil {
			return false
		}
		for r := range parts {
			for i := range parts[r] {
				if back[r][i] != parts[r][i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
