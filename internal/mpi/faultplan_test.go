package mpi

import (
	"reflect"
	"testing"
	"time"
)

// TestFaultPlanStringIsDeterministic: String renders the scripted plan
// in one canonical form — independent of construction order and of
// which faults have since fired — because the scenario harness embeds
// it in repro lines that must be stable across runs.
func TestFaultPlanStringIsDeterministic(t *testing.T) {
	a := NewFaultPlan().KillAt(1, 4).DelayAt(0, 2, 5*time.Millisecond).FailSend(2, 3, 7)
	b := NewFaultPlan().FailSend(2, 3, 7).DelayAt(0, 2, 5*time.Millisecond).KillAt(1, 4)
	want := "delay@rank0/step2/5ms failsend@rank2->rank3/n7 kill@rank1/step4"
	if a.String() != want {
		t.Fatalf("String() = %q, want %q", a.String(), want)
	}
	if a.String() != b.String() {
		t.Fatalf("construction order changed String: %q vs %q", a.String(), b.String())
	}
	if !a.takeKill(1, 4) {
		t.Fatal("scripted kill did not consume")
	}
	if a.String() != want {
		t.Fatalf("String changed after a fault fired: %q", a.String())
	}
	var nilPlan *FaultPlan
	if nilPlan.String() != "" {
		t.Fatalf("nil plan String() = %q, want empty", nilPlan.String())
	}
}

// TestFaultPlanFiredTracksConsumption: Fired reports exactly the
// consumed faults, in fire order, in spec form; unconsumed scripts
// never appear, and each fault fires at most once.
func TestFaultPlanFiredTracksConsumption(t *testing.T) {
	p := NewFaultPlan().KillAt(1, 4).DelayAt(0, 2, 5*time.Millisecond).FailSend(0, 1, 2)
	if got := p.Fired(); len(got) != 0 {
		t.Fatalf("fresh plan Fired() = %v", got)
	}
	if d, ok := p.takeDelay(0, 2); !ok || d != 5*time.Millisecond {
		t.Fatalf("takeDelay = %v, %v", d, ok)
	}
	if p.takeFailSend(0, 1) {
		t.Fatal("first send on the link failed; scripted for the 2nd")
	}
	if !p.takeFailSend(0, 1) {
		t.Fatal("second send on the link did not fail")
	}
	if !p.takeKill(1, 4) {
		t.Fatal("kill did not consume")
	}
	if p.takeKill(1, 4) {
		t.Fatal("kill fired twice")
	}
	want := []string{"delay@rank0/step2/5ms", "failsend@rank0->rank1", "kill@rank1/step4"}
	if got := p.Fired(); !reflect.DeepEqual(got, want) {
		t.Fatalf("Fired() = %v, want %v", got, want)
	}
	var nilPlan *FaultPlan
	if nilPlan.Fired() != nil {
		t.Fatal("nil plan Fired() should be nil")
	}
}
