package mpi

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"candle/internal/transport"
)

// connectWorlds builds two partial worlds covering ranks 0..size-1,
// split into localA and localB, with every boundary-crossing link
// carried over a transport.InprocPipe (the in-memory stand-in for a
// socket: frames are copied, FIFO, and close gives EOF).
func connectWorlds(t *testing.T, size int, localA, localB []int) (*World, *World) {
	t.Helper()
	inA := make(map[int]bool)
	for _, r := range localA {
		inA[r] = true
	}
	connsA := map[Pair]transport.Conn{}
	connsB := map[Pair]transport.Conn{}
	for s := 0; s < size; s++ {
		for d := 0; d < size; d++ {
			if s == d || inA[s] == inA[d] {
				continue
			}
			src, dst := transport.InprocPipe()
			if inA[s] {
				connsA[Pair{Src: s, Dst: d}] = src
				connsB[Pair{Src: s, Dst: d}] = dst
			} else {
				connsB[Pair{Src: s, Dst: d}] = src
				connsA[Pair{Src: s, Dst: d}] = dst
			}
		}
	}
	wA, err := NewPartialWorld(size, localA, connsA)
	if err != nil {
		t.Fatalf("partial world A: %v", err)
	}
	wB, err := NewPartialWorld(size, localB, connsB)
	if err != nil {
		t.Fatalf("partial world B: %v", err)
	}
	return wA, wB
}

// runBoth drives both halves of a split world concurrently and returns
// each half's Run error.
func runBoth(t *testing.T, wA, wB *World, f func(c *Comm) error) (errA, errB error) {
	t.Helper()
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); errA = wA.Run(f) }()
	go func() { defer wg.Done(); errB = wB.Run(f) }()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("split world deadlocked")
	}
	return errA, errB
}

// TestPartialWorldCollectives runs every collective across a world
// split over two "processes" and checks the results match a complete
// in-process world bit for bit.
func TestPartialWorldCollectives(t *testing.T) {
	const size = 4
	const n = 1000
	worker := func(results [][]float64) func(c *Comm) error {
		return func(c *Comm) error {
			data := make([]float64, n)
			for i := range data {
				data[i] = float64(c.Rank()*n+i) * 0.25
			}
			if err := c.Barrier(); err != nil {
				return err
			}
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
			if err := c.AllreduceMean(data[:n/2]); err != nil {
				return err
			}
			bc := make([]float64, 17)
			if c.Rank() == 2 {
				for i := range bc {
					bc[i] = float64(i) * 1.5
				}
			}
			if err := c.Broadcast(2, bc); err != nil {
				return err
			}
			gathered := make([]float64, size*8)
			if err := c.AllgatherInto(data[:8], gathered); err != nil {
				return err
			}
			results[c.Rank()] = append(append(append([]float64(nil), data...), bc...), gathered...)
			return nil
		}
	}

	want := make([][]float64, size)
	if err := NewWorld(size).Run(worker(want)); err != nil {
		t.Fatalf("complete world: %v", err)
	}

	got := make([][]float64, size)
	wA, wB := connectWorlds(t, size, []int{0, 1}, []int{2, 3})
	errA, errB := runBoth(t, wA, wB, worker(got))
	if errA != nil || errB != nil {
		t.Fatalf("split world: A=%v B=%v", errA, errB)
	}
	for r := 0; r < size; r++ {
		if len(got[r]) != len(want[r]) {
			t.Fatalf("rank %d: %d results, want %d", r, len(got[r]), len(want[r]))
		}
		for i := range want[r] {
			if got[r][i] != want[r][i] {
				t.Fatalf("rank %d result %d: split %v != complete %v", r, i, got[r][i], want[r][i])
			}
		}
	}
}

// TestPartialWorldUnevenSplit covers a 1/3 split (one rank alone in a
// process) and point-to-point traffic across the boundary.
func TestPartialWorldUnevenSplit(t *testing.T) {
	wA, wB := connectWorlds(t, 4, []int{2}, []int{0, 1, 3})
	errA, errB := runBoth(t, wA, wB, func(c *Comm) error {
		switch c.Rank() {
		case 0:
			if err := c.Send(2, 0, []float64{41, 42}); err != nil {
				return err
			}
		case 2:
			got, err := c.Recv(0, 0)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[1] != 42 {
				return fmt.Errorf("rank 2 got %v", got)
			}
			return c.Send(3, 0, got)
		case 3:
			got, err := c.Recv(2, 0)
			if err != nil {
				return err
			}
			if len(got) != 2 || got[0] != 41 {
				return fmt.Errorf("rank 3 got %v", got)
			}
		}
		return nil
	})
	if errA != nil || errB != nil {
		t.Fatalf("A=%v B=%v", errA, errB)
	}
}

// TestPartialWorldAbortPropagates injects a kill into one half and
// checks the other half's blocked collectives unwind with the same
// typed error naming the originating rank — the cross-process version
// of the in-process abort contract, including errors.Is(ErrKilled)
// surviving the wire.
func TestPartialWorldAbortPropagates(t *testing.T) {
	wA, wB := connectWorlds(t, 4, []int{0, 1}, []int{2, 3})
	wB.InjectFaults(NewFaultPlan().KillAt(3, 2))
	errA, errB := runBoth(t, wA, wB, func(c *Comm) error {
		data := make([]float64, 256)
		for i := 0; i < 10; i++ {
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
		}
		return nil
	})
	for side, err := range map[string]error{"A": errA, "B": errB} {
		var rf *RankFailedError
		if !errors.As(err, &rf) {
			t.Fatalf("side %s: %v, want *RankFailedError", side, err)
		}
		if rf.Rank != 3 {
			t.Fatalf("side %s blames rank %d, want 3 (err: %v)", side, rf.Rank, err)
		}
		if !errors.Is(err, ErrKilled) {
			t.Fatalf("side %s lost the ErrKilled cause: %v", side, err)
		}
	}
}

// TestPartialWorldPeerLost severs every cross-boundary conn without the
// done handshake — the wire view of a SIGKILLed peer process — and
// checks the surviving half unwinds with ErrPeerLost instead of
// hanging.
func TestPartialWorldPeerLost(t *testing.T) {
	wA, wB := connectWorlds(t, 4, []int{0, 1}, []int{2, 3})
	// Sever B's side of the mesh: A's readers see EOF, A's writers see
	// closed pipes.
	wB.closing.Store(true) // keep B's own goroutines from treating this as a local failure
	wB.closeConns()
	err := wA.Run(func(c *Comm) error {
		data := make([]float64, 64)
		for {
			if err := c.AllreduceSum(data); err != nil {
				return err
			}
		}
	})
	var rf *RankFailedError
	if !errors.As(err, &rf) {
		t.Fatalf("%v, want *RankFailedError", err)
	}
	if !errors.Is(err, ErrPeerLost) {
		t.Fatalf("cause %v, want ErrPeerLost", err)
	}
	if rf.Rank != 2 && rf.Rank != 3 {
		t.Fatalf("blamed rank %d, want one of the lost peers (2 or 3)", rf.Rank)
	}
}

// TestPartialWorldEarlyDone covers schedule divergence: one half
// finishes cleanly while the other still expects data. The stuck half
// must surface ErrPeerLost, not deadlock.
func TestPartialWorldEarlyDone(t *testing.T) {
	wA, wB := connectWorlds(t, 2, []int{0}, []int{1})
	errA, errB := runBoth(t, wA, wB, func(c *Comm) error {
		if c.Rank() == 1 {
			return nil // exits immediately; rank 0 still wants a barrier
		}
		return c.Barrier()
	})
	if !errors.Is(errA, ErrPeerLost) {
		t.Fatalf("stuck side: %v, want ErrPeerLost", errA)
	}
	// The clean-exit side may either finish before the abort lands (nil)
	// or observe the propagated abort during teardown — both are typed.
	if errB != nil && !errors.Is(errB, ErrPeerLost) {
		t.Fatalf("clean-exit side: %v, want nil or ErrPeerLost", errB)
	}
}

// TestPartialWorldValidation covers constructor rejection paths.
func TestPartialWorldValidation(t *testing.T) {
	if _, err := NewPartialWorld(4, nil, nil); err == nil {
		t.Fatal("no local ranks accepted")
	}
	if _, err := NewPartialWorld(4, []int{5}, nil); err == nil {
		t.Fatal("out-of-range rank accepted")
	}
	if _, err := NewPartialWorld(4, []int{1, 1}, nil); err == nil {
		t.Fatal("duplicate rank accepted")
	}
	if _, err := NewPartialWorld(4, []int{0, 1}, map[Pair]transport.Conn{}); err == nil {
		t.Fatal("missing boundary conns accepted")
	}
	w, err := NewPartialWorld(2, []int{0, 1}, nil)
	if err != nil {
		t.Fatalf("fully local partial world: %v", err)
	}
	if got := w.LocalRanks(); len(got) != 2 {
		t.Fatalf("LocalRanks = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Comm for non-local rank did not panic")
		}
	}()
	wA, _ := connectWorlds(t, 2, []int{0}, []int{1})
	wA.Comm(1)
}
