package advisor

import (
	"errors"
	"math"
	"strings"
	"testing"

	"candle/internal/e2ebench"
	"candle/internal/hpc"
	"candle/internal/sim"
)

// legacyRecommend is a verbatim copy of the pre-Calibration sweep (the
// inlined triple loop Recommend used to be). The compatibility test
// below proves the Analytic source reproduces it plan for plan, in
// order — the API redesign's "no behavior change" guarantee.
func legacyRecommend(req Request) (best Plan, candidates []Plan, err error) {
	bench, err := sim.BenchByName(req.Benchmark)
	if err != nil {
		return Plan{}, nil, err
	}
	maxWorkers := req.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 384
	}
	strategies := []string{"fixed"}
	if req.ScaleBatch {
		strategies = append(strategies, "linear", "sqrt", "cbrt")
	}
	found := false
	for _, n := range workerSweep {
		if n > maxWorkers {
			break
		}
		for _, loader := range []sim.Loader{sim.LoaderNaive, sim.LoaderParallel, sim.LoaderChunked} {
			for _, strat := range strategies {
				batch := bench.DefaultBatch
				switch strat {
				case "linear":
					batch = bench.DefaultBatch * n
				case "sqrt":
					batch = int(float64(bench.DefaultBatch) * math.Sqrt(float64(n)))
				case "cbrt":
					batch = int(float64(bench.DefaultBatch) * math.Cbrt(float64(n)))
				}
				r, runErr := sim.Run(sim.Config{
					Machine: req.Machine, Bench: bench, Ranks: n,
					Scaling: sim.Strong, Epochs: req.Epochs, Batch: batch,
					Loader: loader,
				})
				if runErr != nil {
					continue
				}
				p := Plan{
					Workers: n, Batch: r.Batch, Loader: loader, Strategy: strat,
					TimeS: r.TotalTime, EnergyJ: r.TotalEnergyJ,
					Accuracy: r.Accuracy, Loss: r.Loss,
				}
				candidates = append(candidates, p)
				if !feasible(p, bench, req) {
					continue
				}
				if !found || better(p, best, req.Objective) {
					best = p
					found = true
				}
			}
		}
	}
	if !found {
		return Plan{}, candidates, ErrInfeasible
	}
	return best, candidates, nil
}

func TestAnalyticMatchesLegacySweep(t *testing.T) {
	requests := []Request{
		{Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinTime, MinAccuracy: 0.99},
		{Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinEnergy, MinAccuracy: 0.99},
		{Benchmark: "NT3", Machine: hpc.Theta(), Objective: MinEDP, MinAccuracy: 0.95},
		{Benchmark: "P1B1", Machine: hpc.Summit(), Objective: MinTime, MaxLoss: 0.02},
		{Benchmark: "P1B2", Machine: hpc.Summit(), Objective: MinTime, MaxWorkers: 24},
		{Benchmark: "P1B3", Machine: hpc.Summit(), Objective: MinTime, MinAccuracy: 0.64, Epochs: 1, ScaleBatch: true},
	}
	for _, req := range requests {
		gotBest, gotCands, gotErr := Recommend(req)
		wantBest, wantCands, wantErr := legacyRecommend(req)
		if (gotErr == nil) != (wantErr == nil) {
			t.Fatalf("%+v: err %v vs legacy %v", req, gotErr, wantErr)
		}
		if len(gotCands) != len(wantCands) {
			t.Fatalf("%+v: %d candidates vs legacy %d", req, len(gotCands), len(wantCands))
		}
		for i := range gotCands {
			if !plansEqual(gotCands[i], wantCands[i]) {
				t.Fatalf("%+v: candidate %d differs:\n new %+v\n old %+v", req, i, gotCands[i], wantCands[i])
			}
		}
		if gotErr == nil && !plansEqual(gotBest, wantBest) {
			t.Fatalf("%+v: recommendation differs:\n new %+v\n old %+v", req, gotBest, wantBest)
		}
	}
}

// plansEqual ignores the new Engine field (legacy plans predate it) but
// compares everything the legacy sweep produced, exactly.
func plansEqual(a, b Plan) bool {
	return a.Workers == b.Workers && a.Batch == b.Batch && a.Loader == b.Loader &&
		a.Strategy == b.Strategy && a.TimeS == b.TimeS && a.EnergyJ == b.EnergyJ &&
		a.Accuracy == b.Accuracy && a.Loss == b.Loss
}

// measuredFixture builds a small two-config NT3 artifact where the
// sharded 2-rank run reaches 0.8 accuracy faster than the parallel
// 1-rank run — the opposite of what the analytic tables would say at
// paper scale, so a changed recommendation proves the measured source
// is actually consulted.
func measuredFixture() *Measured {
	m := &e2ebench.Metrics{Seed: 11, Pilots: []e2ebench.PilotResult{{
		Spec: e2ebench.PilotSpec{Name: "NT3", Batch: 7, TotalEpochs: 16,
			TargetKind: e2ebench.TargetAccuracy, Target: 0.7},
		Configs: []e2ebench.ConfigResult{
			{
				Config:        e2ebench.Config{Engine: "parallel", Ranks: 1, Batch: 7, DType: "f64"},
				ReachedTarget: true, TimeToTargetS: 4, EnergyToTargetJ: 400,
				TotalS: 10, EnergyJ: 900, FinalTestAcc: 0.9, FinalTestLoss: 0.2,
				EpochEndS:     []float64{2, 4, 6, 8},
				EpochTestAcc:  []float64{0.5, 0.7, 0.8, 0.9},
				EpochTestLoss: []float64{0.9, 0.6, 0.4, 0.2},
				EpochEnergyJ:  []float64{200, 400, 600, 800},
			},
			{
				Config:        e2ebench.Config{Engine: "sharded", Ranks: 2, Overlap: true, Batch: 7, DType: "f32"},
				ReachedTarget: true, TimeToTargetS: 2, EnergyToTargetJ: 300,
				TotalS: 5, EnergyJ: 950, FinalTestAcc: 0.85, FinalTestLoss: 0.3,
				EpochEndS:     []float64{1, 2, 3, 4},
				EpochTestAcc:  []float64{0.6, 0.75, 0.8, 0.85},
				EpochTestLoss: []float64{0.8, 0.5, 0.45, 0.3},
				EpochEnergyJ:  []float64{190, 380, 570, 760},
			},
		},
	}}}
	return NewMeasured(m, "test artifact")
}

func TestMeasuredCalibrationChangesRecommendation(t *testing.T) {
	cal := measuredFixture()
	best, cands, err := Recommend(Request{
		Benchmark: "NT3", MinAccuracy: 0.8, Objective: MinTime, Calibration: cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 2 {
		t.Fatalf("candidates = %d, want the 2 measured configs", len(cands))
	}
	// The measured winner: sharded, 2 ranks, overlap, f32 — reaching 0.8
	// at t=3 vs parallel's t=6. The analytic source can never produce
	// this plan (it doesn't know the sharded engine exists).
	if best.Engine != "sharded" || best.Workers != 2 || !best.Overlap || best.DType != "f32" {
		t.Fatalf("best = %+v, want the measured sharded/2-rank config", best)
	}
	if best.TimeS != 3 || best.EnergyJ != 570 {
		t.Fatalf("best priced at %v s / %v J, want the epoch-3 trajectory point", best.TimeS, best.EnergyJ)
	}
	if best.Strategy != "measured" {
		t.Fatalf("strategy = %q", best.Strategy)
	}
	analyticBest, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), MinAccuracy: 0.8, Objective: MinTime,
	})
	if err != nil {
		t.Fatal(err)
	}
	if analyticBest.Engine == best.Engine && analyticBest.Workers == best.Workers {
		t.Fatalf("analytic and measured recommendations coincide (%+v); fixture should force a difference", best)
	}
}

func TestMeasuredEnergyObjectiveAndFloorRace(t *testing.T) {
	cal := measuredFixture()
	// At floor 0.9 only the parallel run qualifies (sharded tops out at
	// 0.85) — its unreached trajectory must make it infeasible, not
	// invisible.
	best, cands, err := Recommend(Request{
		Benchmark: "NT3", MinAccuracy: 0.9, Objective: MinTime, Calibration: cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Engine != "parallel" || best.TimeS != 8 {
		t.Fatalf("best = %+v, want parallel at the 0.9-crossing epoch (t=8)", best)
	}
	if len(cands) != 2 {
		t.Fatalf("infeasible measured config dropped from candidates (%d)", len(cands))
	}

	// No floor: full measured budget.
	best, _, err = Recommend(Request{Benchmark: "NT3", Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if best.TimeS != 5 || best.Accuracy != 0.85 {
		t.Fatalf("no-floor best = %+v, want the faster full run", best)
	}
}

func TestMeasuredDeadline(t *testing.T) {
	cal := measuredFixture()
	// Deadline 2 s: sharded crosses 0.75 at t=2; parallel needs t=4 for
	// 0.7+. Floor 0.75 + deadline 2 leaves exactly the sharded plan.
	best, _, err := Recommend(Request{
		Benchmark: "NT3", MinAccuracy: 0.75, DeadlineS: 2, Calibration: cal,
	})
	if err != nil {
		t.Fatal(err)
	}
	if best.Engine != "sharded" || best.TimeS != 2 {
		t.Fatalf("best = %+v", best)
	}
	// An impossible deadline is infeasible, with the deadline in the
	// message.
	_, _, err = Recommend(Request{
		Benchmark: "NT3", MinAccuracy: 0.75, DeadlineS: 0.5, Calibration: cal,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if !strings.Contains(err.Error(), "within 0.5s") {
		t.Fatalf("deadline missing from error: %v", err)
	}
	// The deadline also applies to the analytic source.
	_, _, err = Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), MinAccuracy: 0.99, DeadlineS: 1,
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("analytic deadline ignored: %v", err)
	}
}

func TestMeasuredUnknownPilotIsActionable(t *testing.T) {
	cal := measuredFixture()
	_, _, err := Recommend(Request{Benchmark: "P1B3", Calibration: cal})
	var up *UnknownPilotError
	if !errors.As(err, &up) {
		t.Fatalf("want UnknownPilotError, got %v", err)
	}
	if up.Name != "P1B3" || len(up.Known) != 1 || up.Known[0] != "NT3" {
		t.Fatalf("error fields: %+v", up)
	}
	if !strings.Contains(err.Error(), "NT3") || !strings.Contains(err.Error(), "test artifact") {
		t.Fatalf("error not actionable: %v", err)
	}
}

func TestMeasuredLossTargetPilot(t *testing.T) {
	m := &e2ebench.Metrics{Pilots: []e2ebench.PilotResult{{
		Spec: e2ebench.PilotSpec{Name: "P1B1", Batch: 10,
			TargetKind: e2ebench.TargetLoss, Target: 0.3},
		Configs: []e2ebench.ConfigResult{{
			Config:        e2ebench.Config{Engine: "parallel", Ranks: 1, Batch: 10, DType: "f64"},
			TotalS:        6, EnergyJ: 600, FinalTestLoss: 0.25,
			EpochEndS:     []float64{2, 4, 6},
			EpochTestAcc:  []float64{0, 0, 0},
			EpochTestLoss: []float64{0.6, 0.35, 0.25},
			EpochEnergyJ:  []float64{200, 400, 600},
		}},
	}}}
	cal := NewMeasured(m, "loss fixture")
	best, _, err := Recommend(Request{Benchmark: "P1B1", MaxLoss: 0.4, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if best.TimeS != 4 || best.Loss != 0.35 {
		t.Fatalf("best = %+v, want the 0.4-crossing epoch", best)
	}
	// Unreachable ceiling → infeasible.
	if _, _, err := Recommend(Request{Benchmark: "P1B1", MaxLoss: 0.1, Calibration: cal}); !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
}

func TestMeasuredMaxWorkersFiltersCandidates(t *testing.T) {
	cal := measuredFixture()
	_, cands, err := Recommend(Request{Benchmark: "NT3", MaxWorkers: 1, Calibration: cal})
	if err != nil {
		t.Fatal(err)
	}
	if len(cands) != 1 || cands[0].Workers != 1 {
		t.Fatalf("candidates = %+v", cands)
	}
}

func TestCalibrationNames(t *testing.T) {
	if (Analytic{}).Name() != "analytic" {
		t.Fatal("analytic name")
	}
	if got := measuredFixture().Name(); !strings.Contains(got, "measured") {
		t.Fatalf("measured name: %q", got)
	}
}
