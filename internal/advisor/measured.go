package advisor

import (
	"fmt"
	"strings"

	"candle/internal/e2ebench"
	"candle/internal/sim"
)

// Measured is a Calibration fitted from a BENCH_e2e.json this machine
// produced: candidates are the configurations the harness actually
// ran, and predictions come from the recorded per-epoch accuracy and
// cumulative-energy trajectories rather than the analytic models. The
// advisor can therefore answer "what should I run to reach accuracy
// 0.7 in under 300 s" from data, not curves:
//
//	cal, err := advisor.LoadMeasured("BENCH_e2e.json")
//	best, _, err := advisor.Recommend(advisor.Request{
//		Benchmark: "NT3", MinAccuracy: 0.7, Calibration: cal,
//	})
type Measured struct {
	metrics *e2ebench.Metrics
	source  string // artifact path, for Name()
}

// NewMeasured wraps already-loaded e2e metrics.
func NewMeasured(m *e2ebench.Metrics, source string) *Measured {
	if source == "" {
		source = "BENCH_e2e.json"
	}
	return &Measured{metrics: m, source: source}
}

// LoadMeasured reads a BENCH_e2e.json artifact (schema-checked; wrong
// kinds fail with bench.ErrSchema).
func LoadMeasured(path string) (*Measured, error) {
	m, _, err := e2ebench.Load(path)
	if err != nil {
		return nil, err
	}
	return NewMeasured(m, path), nil
}

// Name implements Calibration.
func (m *Measured) Name() string { return "measured " + m.source }

// UnknownPilotError reports a benchmark absent from the measured
// artifact, listing what it does contain — same shape as
// sim.UnknownBenchmarkError so CLIs print something actionable either
// way.
type UnknownPilotError struct {
	Name   string
	Source string
	Known  []string
}

func (e *UnknownPilotError) Error() string {
	return fmt.Sprintf("advisor: benchmark %q not measured in %s (measured: %s)",
		e.Name, e.Source, strings.Join(e.Known, ", "))
}

// Bench implements Calibration. The returned BenchCal is synthesized
// from the pilot's spec — just enough for the shared feasibility
// checks (Classification gates the accuracy floor, LossAmp > 0 gates
// the loss ceiling); Predict never consults the analytic curve fields.
func (m *Measured) Bench(name string) (sim.BenchCal, error) {
	p := m.metrics.Pilot(name)
	if p == nil {
		var known []string
		for _, pp := range m.metrics.Pilots {
			known = append(known, pp.Spec.Name)
		}
		return sim.BenchCal{}, &UnknownPilotError{Name: name, Source: m.source, Known: known}
	}
	cal := sim.BenchCal{Name: p.Spec.Name, DefaultBatch: p.Spec.Batch}
	if p.Spec.TargetKind == e2ebench.TargetLoss {
		cal.LossAmp = 1
	} else {
		cal.Classification = true
	}
	return cal, nil
}

// Candidates implements Calibration: the measured configurations in
// artifact order (the harness's grid order, so ties still resolve
// deterministically).
func (m *Measured) Candidates(bench sim.BenchCal, req Request) []Candidate {
	p := m.metrics.Pilot(bench.Name)
	if p == nil {
		return nil
	}
	var out []Candidate
	for _, c := range p.Configs {
		if req.MaxWorkers > 0 && c.Config.Ranks > req.MaxWorkers {
			continue
		}
		out = append(out, Candidate{
			Workers: c.Config.Ranks, Batch: c.Config.Batch,
			Engine: c.Config.Engine, Strategy: "measured",
			Overlap: c.Config.Overlap, DType: c.Config.DType,
		})
	}
	return out
}

// Predict implements Calibration by racing the request's own floor
// against the recorded trajectory: the predicted time and energy are
// the run clock and cumulative joules at the first epoch whose test
// evaluation met the floor. A run that never met it reports its full
// cost and best-achieved metrics, which the shared feasibility check
// then rejects — infeasible measured configs still show up as
// candidates, like infeasible simulated ones.
func (m *Measured) Predict(req Request, bench sim.BenchCal, cand Candidate) (Outcome, error) {
	cr := m.findConfig(bench.Name, cand)
	if cr == nil {
		return Outcome{}, fmt.Errorf("advisor: configuration %+v not measured", cand)
	}
	idx := -1
	for i := range cr.EpochTestAcc {
		if req.MinAccuracy > 0 && cr.EpochTestAcc[i] >= req.MinAccuracy {
			idx = i
			break
		}
		if req.MaxLoss > 0 && cr.EpochTestLoss[i] <= req.MaxLoss {
			idx = i
			break
		}
	}
	if req.MinAccuracy <= 0 && req.MaxLoss <= 0 {
		// No floor: the cost of the full measured budget.
		return Outcome{TimeS: cr.TotalS, EnergyJ: cr.EnergyJ,
			Accuracy: cr.FinalTestAcc, Loss: cr.FinalTestLoss}, nil
	}
	if idx < 0 {
		return Outcome{TimeS: cr.TotalS, EnergyJ: cr.EnergyJ,
			Accuracy: maxOf(cr.EpochTestAcc), Loss: minOf(cr.EpochTestLoss)}, nil
	}
	return Outcome{
		TimeS: cr.EpochEndS[idx], EnergyJ: cr.EpochEnergyJ[idx],
		Accuracy: cr.EpochTestAcc[idx], Loss: cr.EpochTestLoss[idx],
	}, nil
}

// findConfig locates the measured ConfigResult a candidate came from.
func (m *Measured) findConfig(pilot string, cand Candidate) *e2ebench.ConfigResult {
	p := m.metrics.Pilot(pilot)
	if p == nil {
		return nil
	}
	for i := range p.Configs {
		c := p.Configs[i].Config
		if c.Ranks == cand.Workers && c.Batch == cand.Batch &&
			c.Engine == cand.Engine && c.Overlap == cand.Overlap && c.DType == cand.DType {
			return &p.Configs[i]
		}
	}
	return nil
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

func minOf(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
