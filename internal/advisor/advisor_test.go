package advisor

import (
	"errors"
	"strings"
	"testing"

	"candle/internal/hpc"
	"candle/internal/sim"
)

func TestRecommendNT3MinTimeRespectsAccuracyFloor(t *testing.T) {
	best, candidates, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(),
		Objective: MinTime, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(candidates) == 0 {
		t.Fatal("no candidates")
	}
	// Accuracy ≥0.99 needs ≥8 epochs/GPU → at most 48 GPUs; the
	// fastest feasible plan is 48 GPUs with the chunked loader.
	if best.Workers != 48 {
		t.Fatalf("best workers = %d, want 48 (accuracy cliff)", best.Workers)
	}
	if best.Loader != sim.LoaderChunked {
		t.Fatalf("best loader = %v, want chunked", best.Loader)
	}
	if best.Accuracy < 0.99 {
		t.Fatalf("best accuracy %v below floor", best.Accuracy)
	}
	// There must exist a faster-but-infeasible candidate (more GPUs,
	// lower accuracy) to prove the floor actually binds.
	foundFaster := false
	for _, c := range candidates {
		if c.TimeS < best.TimeS && c.Accuracy < 0.99 {
			foundFaster = true
		}
	}
	if !foundFaster {
		t.Fatal("accuracy floor did not bind")
	}
}

func TestRecommendMinEnergyPrefersFewerWorkersThanMinTime(t *testing.T) {
	timeBest, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinTime, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	energyBest, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinEnergy, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	if energyBest.EnergyJ > timeBest.EnergyJ {
		t.Fatalf("min-energy plan uses more energy (%v) than min-time plan (%v)",
			energyBest.EnergyJ, timeBest.EnergyJ)
	}
	// Energy grows with allreduce overhead and fleet size, so the
	// energy optimum uses at most as many workers.
	if energyBest.Workers > timeBest.Workers {
		t.Fatalf("min-energy chose more workers (%d) than min-time (%d)",
			energyBest.Workers, timeBest.Workers)
	}
}

func TestRecommendChunkedAlwaysWins(t *testing.T) {
	for _, bench := range []string{"NT3", "P1B1", "P1B2"} {
		best, _, err := Recommend(Request{
			Benchmark: bench, Machine: hpc.Summit(), Objective: MinTime,
		})
		if err != nil {
			t.Fatal(err)
		}
		if best.Loader != sim.LoaderChunked {
			t.Fatalf("%s: best loader %v, want chunked", bench, best.Loader)
		}
	}
}

func TestRecommendP1B3BatchScaling(t *testing.T) {
	best, candidates, err := Recommend(Request{
		Benchmark: "P1B3", Machine: hpc.Summit(),
		Objective: MinTime, MinAccuracy: 0.64, Epochs: 1, ScaleBatch: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Accuracy ≥0.64 rules out linear scaling at high GPU counts; the
	// winner should use cubic-root (or fixed) batches.
	if best.Strategy == "linear" && best.Workers > 6 {
		t.Fatalf("linear scaling cannot reach 0.64 at %d workers", best.Workers)
	}
	if best.Accuracy < 0.64 {
		t.Fatalf("best accuracy %v", best.Accuracy)
	}
	// OOM configurations (linear at 192/384) must have been skipped,
	// not returned as candidates.
	for _, c := range candidates {
		if c.Strategy == "linear" && c.Workers >= 192 {
			t.Fatalf("OOM configuration leaked into candidates: %+v", c)
		}
	}
}

func TestRecommendInfeasible(t *testing.T) {
	_, candidates, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(),
		Objective: MinTime, MinAccuracy: 0.9999999, // unreachable
	})
	if !errors.Is(err, ErrInfeasible) {
		t.Fatalf("want ErrInfeasible, got %v", err)
	}
	if len(candidates) == 0 {
		t.Fatal("candidates should still be reported")
	}
}

func TestRecommendUnknownBenchmark(t *testing.T) {
	if _, _, err := Recommend(Request{Benchmark: "NT9", Machine: hpc.Summit()}); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

func TestRecommendMaxWorkersCap(t *testing.T) {
	_, candidates, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), MaxWorkers: 24,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range candidates {
		if c.Workers > 24 {
			t.Fatalf("candidate exceeds cap: %+v", c)
		}
	}
}

func TestPlanAndObjectiveStrings(t *testing.T) {
	p := Plan{Workers: 48, Batch: 20, Loader: sim.LoaderChunked, Strategy: "fixed",
		TimeS: 185.7, EnergyJ: 1.2e6, Accuracy: 0.992}
	s := p.String()
	if !strings.Contains(s, "48 workers") || !strings.Contains(s, "chunked") {
		t.Fatalf("plan string: %s", s)
	}
	if MinTime.String() != "min-time" || MinEnergy.String() != "min-energy" {
		t.Fatal("objective strings")
	}
}

func TestRecommendMinEDP(t *testing.T) {
	edp, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinEDP, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	timeBest, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinTime, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	energyBest, _, err := Recommend(Request{
		Benchmark: "NT3", Machine: hpc.Summit(), Objective: MinEnergy, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	// EDP of the EDP winner is no worse than either extreme's EDP.
	edpOf := func(p Plan) float64 { return p.EnergyJ * p.TimeS }
	if edpOf(edp) > edpOf(timeBest) || edpOf(edp) > edpOf(energyBest) {
		t.Fatalf("EDP winner (%v) beaten by extremes (%v, %v)",
			edpOf(edp), edpOf(timeBest), edpOf(energyBest))
	}
	if MinEDP.String() != "min-edp" {
		t.Fatal("objective string")
	}
}
