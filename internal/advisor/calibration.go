package advisor

import (
	"math"

	"candle/internal/sim"
)

// Calibration is the data source Recommend sweeps: something that can
// resolve a benchmark, enumerate candidate configurations for a
// request, and predict each candidate's outcome. Two implementations
// exist — Analytic (the paper-calibrated internal/sim models, the
// historical behavior) and Measured (fitted from a BENCH_e2e.json this
// machine produced). The split is the API's point: "where do the
// numbers come from" is now a value you pass, not a package you import.
type Calibration interface {
	// Name identifies the source in reports ("analytic",
	// "measured BENCH_e2e.json").
	Name() string
	// Bench resolves the benchmark's calibration record. Unknown names
	// return a typed, actionable error listing the known ones
	// (sim.UnknownBenchmarkError or UnknownPilotError).
	Bench(name string) (sim.BenchCal, error)
	// Candidates enumerates the configurations to evaluate, in sweep
	// order. Order matters: better() uses a strict less-than, so the
	// earliest candidate wins ties.
	Candidates(bench sim.BenchCal, req Request) []Candidate
	// Predict evaluates one candidate. An error means the configuration
	// is not runnable (OOM and similar) and is skipped, not reported.
	Predict(req Request, bench sim.BenchCal, c Candidate) (Outcome, error)
}

// Candidate is one configuration a calibration can price.
type Candidate struct {
	Workers  int
	Batch    int
	Engine   string // loader/engine name ("naive", "chunked", "parallel", "sharded", ...)
	Strategy string // batch-scaling strategy ("fixed", "linear", "sqrt", "cbrt", "measured")
	Overlap  bool   // async gradient pipeline (measured grids only)
	DType    string // compute precision (measured grids only; "" = f64)
}

// Outcome is a calibration's prediction for one candidate.
type Outcome struct {
	TimeS    float64
	EnergyJ  float64
	Accuracy float64
	Loss     float64
}

// Analytic is the paper-calibrated simulator source: sim.BenchByName
// tables, sim.Run predictions. The zero value is ready to use and is
// what a nil Request.Calibration falls back to, so existing callers
// keep the exact historical sweep (same configurations, same order,
// same tie-breaks).
type Analytic struct{}

// Name implements Calibration.
func (Analytic) Name() string { return "analytic" }

// Bench implements Calibration via the sim calibration tables.
func (Analytic) Bench(name string) (sim.BenchCal, error) { return sim.BenchByName(name) }

// analyticLoaders is the historical loader sweep order; with better()'s
// strict less-than it decides ties, so it must not change.
var analyticLoaders = []sim.Loader{sim.LoaderNaive, sim.LoaderParallel, sim.LoaderChunked}

// workerSweep is the standard ladder of worker counts.
var workerSweep = []int{1, 6, 12, 24, 48, 96, 192, 384}

// Candidates implements Calibration: the legacy triple loop — worker
// ladder × loaders × strategies — in its original iteration order.
func (Analytic) Candidates(bench sim.BenchCal, req Request) []Candidate {
	maxWorkers := req.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 384
	}
	strategies := []string{"fixed"}
	if req.ScaleBatch {
		strategies = append(strategies, "linear", "sqrt", "cbrt")
	}
	var out []Candidate
	for _, n := range workerSweep {
		if n > maxWorkers {
			break
		}
		for _, loader := range analyticLoaders {
			for _, strat := range strategies {
				batch := bench.DefaultBatch
				switch strat {
				case "linear":
					batch = bench.DefaultBatch * n
				case "sqrt":
					batch = int(float64(bench.DefaultBatch) * math.Sqrt(float64(n)))
				case "cbrt":
					batch = int(float64(bench.DefaultBatch) * math.Cbrt(float64(n)))
				}
				out = append(out, Candidate{
					Workers: n, Batch: batch, Engine: loader.String(), Strategy: strat,
				})
			}
		}
	}
	return out
}

// Predict implements Calibration by running the simulator.
func (Analytic) Predict(req Request, bench sim.BenchCal, c Candidate) (Outcome, error) {
	r, err := sim.Run(sim.Config{
		Machine: req.Machine, Bench: bench, Ranks: c.Workers,
		Scaling: sim.Strong, Epochs: req.Epochs, Batch: c.Batch,
		Loader: loaderByName(c.Engine),
	})
	if err != nil {
		return Outcome{}, err
	}
	return Outcome{TimeS: r.TotalTime, EnergyJ: r.TotalEnergyJ, Accuracy: r.Accuracy, Loss: r.Loss}, nil
}

// loaderByName maps an engine name back to the sim loader enum;
// unknown names fall back to naive (Analytic only emits known ones).
func loaderByName(name string) sim.Loader {
	for _, l := range analyticLoaders {
		if l.String() == name {
			return l
		}
	}
	return sim.LoaderNaive
}
