// Package advisor uses the calibrated performance/power models of
// internal/sim to recommend run configurations — the
// "performance-power modeling to further optimize the CANDLE
// benchmarks" the paper lists as future work (its reference [34]).
//
// Given a benchmark, a machine, an accuracy floor, and an objective
// (minimize time or energy), Recommend sweeps worker counts, loaders,
// and batch-scaling strategies through the simulator and returns the
// best feasible plan, for instance: "NT3 on Summit to accuracy ≥0.99:
// 48 GPUs, batch 20, chunked loader — 186 s, 0.9 MJ".
package advisor

import (
	"errors"
	"fmt"
	"math"

	"candle/internal/hpc"
	"candle/internal/sim"
)

// Objective selects what Recommend minimizes.
type Objective int

// Objectives.
const (
	MinTime Objective = iota
	MinEnergy
	// MinEDP minimizes the energy-delay product (J·s), the standard
	// HPC metric balancing the paper's two improvement axes.
	MinEDP
)

func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return "min-time"
	}
}

// Request describes what the user wants to run.
type Request struct {
	Benchmark string
	Machine   hpc.Machine
	Objective Objective
	// MinAccuracy is the accuracy floor a plan must reach
	// (classification benchmarks only; 0 = no floor).
	MinAccuracy float64
	// MaxLoss is the loss ceiling (loss benchmarks only; 0 = none).
	MaxLoss float64
	// MaxWorkers caps the sweep (0 = 384, the paper's strong-scaling
	// maximum).
	MaxWorkers int
	// Epochs is the total epoch budget (0 = benchmark default).
	Epochs int
	// ScaleBatch additionally sweeps the Figure 4(b) batch-scaling
	// strategies (for P1B3-style workloads).
	ScaleBatch bool
}

// Plan is one feasible configuration with its predicted outcome.
type Plan struct {
	Workers  int
	Batch    int
	Loader   sim.Loader
	Strategy string // "fixed", "linear", "sqrt", "cbrt"

	TimeS    float64
	EnergyJ  float64
	Accuracy float64
	Loss     float64
}

func (p Plan) String() string {
	return fmt.Sprintf("%d workers, batch %d (%s), %s loader: %.1f s, %.2f MJ, accuracy %.3f",
		p.Workers, p.Batch, p.Strategy, p.Loader, p.TimeS, p.EnergyJ/1e6, p.Accuracy)
}

// ErrInfeasible reports that no swept configuration met the floor.
var ErrInfeasible = errors.New("advisor: no feasible configuration")

// workerSweep is the standard ladder of worker counts.
var workerSweep = []int{1, 6, 12, 24, 48, 96, 192, 384}

// Recommend sweeps configurations through the simulator and returns
// the best feasible plan plus every candidate considered (feasible or
// not), for reporting.
func Recommend(req Request) (best Plan, candidates []Plan, err error) {
	bench, err := sim.BenchByName(req.Benchmark)
	if err != nil {
		return Plan{}, nil, err
	}
	maxWorkers := req.MaxWorkers
	if maxWorkers <= 0 {
		maxWorkers = 384
	}
	strategies := []string{"fixed"}
	if req.ScaleBatch {
		strategies = append(strategies, "linear", "sqrt", "cbrt")
	}
	found := false
	for _, n := range workerSweep {
		if n > maxWorkers {
			break
		}
		for _, loader := range []sim.Loader{sim.LoaderNaive, sim.LoaderParallel, sim.LoaderChunked} {
			for _, strat := range strategies {
				batch := bench.DefaultBatch
				switch strat {
				case "linear":
					batch = bench.DefaultBatch * n
				case "sqrt":
					batch = int(float64(bench.DefaultBatch) * math.Sqrt(float64(n)))
				case "cbrt":
					batch = int(float64(bench.DefaultBatch) * math.Cbrt(float64(n)))
				}
				r, runErr := sim.Run(sim.Config{
					Machine: req.Machine, Bench: bench, Ranks: n,
					Scaling: sim.Strong, Epochs: req.Epochs, Batch: batch,
					Loader: loader,
				})
				if runErr != nil {
					// OOM and similar: not a candidate.
					continue
				}
				p := Plan{
					Workers: n, Batch: r.Batch, Loader: loader, Strategy: strat,
					TimeS: r.TotalTime, EnergyJ: r.TotalEnergyJ,
					Accuracy: r.Accuracy, Loss: r.Loss,
				}
				candidates = append(candidates, p)
				if !feasible(p, bench, req) {
					continue
				}
				if !found || better(p, best, req.Objective) {
					best = p
					found = true
				}
			}
		}
	}
	if !found {
		return Plan{}, candidates, fmt.Errorf("%w: %s on %s with accuracy ≥ %v",
			ErrInfeasible, req.Benchmark, req.Machine.Name, req.MinAccuracy)
	}
	return best, candidates, nil
}

func feasible(p Plan, bench sim.BenchCal, req Request) bool {
	if bench.Classification && req.MinAccuracy > 0 && p.Accuracy < req.MinAccuracy {
		return false
	}
	if bench.LossAmp > 0 && req.MaxLoss > 0 && p.Loss > req.MaxLoss {
		return false
	}
	return true
}

func better(a, b Plan, obj Objective) bool {
	switch obj {
	case MinEnergy:
		return a.EnergyJ < b.EnergyJ
	case MinEDP:
		return a.EnergyJ*a.TimeS < b.EnergyJ*b.TimeS
	default:
		return a.TimeS < b.TimeS
	}
}
