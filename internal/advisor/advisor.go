// Package advisor recommends run configurations — the
// "performance-power modeling to further optimize the CANDLE
// benchmarks" the paper lists as future work (its reference [34]).
//
// Given a benchmark, an accuracy floor, and an objective (minimize
// time, energy, or their product), Recommend sweeps candidate
// configurations from a Calibration source and returns the best
// feasible plan, for instance: "NT3 on Summit to accuracy ≥0.99:
// 48 GPUs, batch 20, chunked loader — 186 s, 0.9 MJ".
//
// Where the predictions come from is the Request.Calibration field:
// nil keeps the historical Analytic source (the paper-calibrated
// internal/sim models), while a Measured source fitted from a
// BENCH_e2e.json artifact (LoadMeasured) recommends from trajectories
// this machine actually produced.
package advisor

import (
	"errors"
	"fmt"

	"candle/internal/hpc"
	"candle/internal/sim"
)

// Objective selects what Recommend minimizes.
type Objective int

// Objectives.
const (
	MinTime Objective = iota
	MinEnergy
	// MinEDP minimizes the energy-delay product (J·s), the standard
	// HPC metric balancing the paper's two improvement axes.
	MinEDP
)

func (o Objective) String() string {
	switch o {
	case MinEnergy:
		return "min-energy"
	case MinEDP:
		return "min-edp"
	default:
		return "min-time"
	}
}

// Request describes what the user wants to run.
type Request struct {
	Benchmark string
	// Machine is the target machine for analytic predictions; a
	// measured calibration ignores it (its data already has a machine:
	// the one that produced the artifact).
	Machine   hpc.Machine
	Objective Objective
	// MinAccuracy is the accuracy floor a plan must reach
	// (classification benchmarks only; 0 = no floor).
	MinAccuracy float64
	// MaxLoss is the loss ceiling (loss benchmarks only; 0 = none).
	MaxLoss float64
	// MaxWorkers caps the sweep (0 = 384, the paper's strong-scaling
	// maximum).
	MaxWorkers int
	// Epochs is the total epoch budget (0 = benchmark default;
	// measured calibrations always price their recorded budget).
	Epochs int
	// ScaleBatch additionally sweeps the Figure 4(b) batch-scaling
	// strategies (for P1B3-style workloads; analytic only).
	ScaleBatch bool
	// DeadlineS rejects plans predicted to take longer than this many
	// seconds (0 = no deadline). Unlike the floors, it applies to every
	// benchmark kind.
	DeadlineS float64
	// Calibration is where predictions come from; nil means Analytic{}
	// (the historical simulator sweep, bit-for-bit).
	Calibration Calibration
}

// Plan is one feasible configuration with its predicted outcome.
type Plan struct {
	Workers int
	Batch   int
	// Engine is the loader/engine name; Loader is its sim enum when one
	// of the three classic loaders, kept for existing callers (a
	// measured engine outside that set maps to LoaderNaive — read
	// Engine, not Loader, when exact identity matters).
	Engine   string
	Loader   sim.Loader
	Strategy string // "fixed", "linear", "sqrt", "cbrt", "measured"
	Overlap  bool   // measured plans: async gradient pipeline
	DType    string // measured plans: compute precision

	TimeS    float64
	EnergyJ  float64
	Accuracy float64
	Loss     float64
}

func (p Plan) String() string {
	engine := p.Engine
	if engine == "" {
		engine = p.Loader.String()
	}
	if p.Overlap {
		engine += "+overlap"
	}
	if p.DType != "" && p.DType != "f64" {
		engine += "/" + p.DType
	}
	return fmt.Sprintf("%d workers, batch %d (%s), %s loader: %.1f s, %.2f MJ, accuracy %.3f",
		p.Workers, p.Batch, p.Strategy, engine, p.TimeS, p.EnergyJ/1e6, p.Accuracy)
}

// ErrInfeasible reports that no swept configuration met the floor.
var ErrInfeasible = errors.New("advisor: no feasible configuration")

// Recommend sweeps the calibration's candidates and returns the best
// feasible plan plus every candidate considered (feasible or not), for
// reporting. The calibration defaults to Analytic{}, which reproduces
// the historical simulator sweep exactly.
func Recommend(req Request) (best Plan, candidates []Plan, err error) {
	cal := req.Calibration
	if cal == nil {
		cal = Analytic{}
	}
	bench, err := cal.Bench(req.Benchmark)
	if err != nil {
		return Plan{}, nil, err
	}
	found := false
	for _, c := range cal.Candidates(bench, req) {
		out, predErr := cal.Predict(req, bench, c)
		if predErr != nil {
			// OOM and similar: not a candidate.
			continue
		}
		p := Plan{
			Workers: c.Workers, Batch: c.Batch,
			Engine: c.Engine, Loader: loaderByName(c.Engine),
			Strategy: c.Strategy, Overlap: c.Overlap, DType: c.DType,
			TimeS: out.TimeS, EnergyJ: out.EnergyJ,
			Accuracy: out.Accuracy, Loss: out.Loss,
		}
		candidates = append(candidates, p)
		if !feasible(p, bench, req) {
			continue
		}
		if !found || better(p, best, req.Objective) {
			best = p
			found = true
		}
	}
	if !found {
		return Plan{}, candidates, infeasibleErr(req, cal)
	}
	return best, candidates, nil
}

func infeasibleErr(req Request, cal Calibration) error {
	where := req.Machine.Name
	if where == "" {
		where = cal.Name()
	}
	msg := fmt.Sprintf("%s on %s", req.Benchmark, where)
	if req.MinAccuracy > 0 {
		msg += fmt.Sprintf(" with accuracy ≥ %v", req.MinAccuracy)
	}
	if req.MaxLoss > 0 {
		msg += fmt.Sprintf(" with loss ≤ %v", req.MaxLoss)
	}
	if req.DeadlineS > 0 {
		msg += fmt.Sprintf(" within %vs", req.DeadlineS)
	}
	return fmt.Errorf("%w: %s", ErrInfeasible, msg)
}

func feasible(p Plan, bench sim.BenchCal, req Request) bool {
	if bench.Classification && req.MinAccuracy > 0 && p.Accuracy < req.MinAccuracy {
		return false
	}
	if bench.LossAmp > 0 && req.MaxLoss > 0 && p.Loss > req.MaxLoss {
		return false
	}
	if req.DeadlineS > 0 && p.TimeS > req.DeadlineS {
		return false
	}
	return true
}

func better(a, b Plan, obj Objective) bool {
	switch obj {
	case MinEnergy:
		return a.EnergyJ < b.EnergyJ
	case MinEDP:
		return a.EnergyJ*a.TimeS < b.EnergyJ*b.TimeS
	default:
		return a.TimeS < b.TimeS
	}
}
