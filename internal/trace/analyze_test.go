package trace

import (
	"math"
	"testing"
)

func analysisTimeline() *Timeline {
	tl := NewTimeline()
	// Rank 0: 0–10 io, 10–12 broadcast, 12–20 compute.
	tl.Complete("data_loading", "io", 0, 0, 0, 10)
	tl.Complete("mpi_broadcast", "broadcast", 0, 0, 10, 2)
	tl.Complete("compute", "compute", 0, 0, 12, 8)
	// Rank 1: shifted.
	tl.Complete("data_loading", "io", 0, 1, 0, 12)
	tl.Complete("compute", "compute", 0, 1, 12, 4)
	return tl
}

func TestCategoryTime(t *testing.T) {
	tl := analysisTimeline()
	ct := tl.CategoryTime(0)
	if ct["io"] != 10 || ct["broadcast"] != 2 || ct["compute"] != 8 {
		t.Fatalf("CategoryTime = %v", ct)
	}
	if len(tl.CategoryTime(7)) != 0 {
		t.Fatal("absent rank should be empty")
	}
}

func TestBusyFraction(t *testing.T) {
	tl := analysisTimeline()
	if f := tl.BusyFraction(0, "io"); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("io fraction = %v", f)
	}
	if f := tl.BusyFraction(0, "compute"); math.Abs(f-0.4) > 1e-12 {
		t.Fatalf("compute fraction = %v", f)
	}
	if f := tl.BusyFraction(1, "io"); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("rank 1 io fraction = %v", f)
	}
	if tl.BusyFraction(9, "io") != 0 {
		t.Fatal("absent rank fraction")
	}
}

func TestRanks(t *testing.T) {
	tl := analysisTimeline()
	tl.Complete("x", "io", 0, 5, 0, 1)
	got := tl.Ranks()
	want := []int{0, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("Ranks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
	if len(NewTimeline().Ranks()) != 0 {
		t.Fatal("empty timeline ranks")
	}
}

func TestBusyFractionOnSimTimelineShape(t *testing.T) {
	// On a naive-loader NT3 run at scale, I/O dominates rank 0's span
	// — the paper's core observation, read off the timeline.
	tl := NewTimeline()
	tl.Complete("data_loading", "io", 0, 0, 0, 126)
	tl.Complete("negotiate_broadcast", "broadcast", 0, 0, 126, 40)
	tl.Complete("compute", "compute", 0, 0, 166, 23)
	if tl.BusyFraction(0, "io") < 0.5 {
		t.Fatal("io should dominate")
	}
}

func TestNameTime(t *testing.T) {
	tl := NewTimeline()
	tl.Complete("queue_wait", "allreduce", 0, 0, 1, 2)
	tl.Complete("queue_wait", "allreduce", 0, 0, 5, 3)
	tl.Complete("queue_wait", "allreduce", 0, 1, 5, 7)
	tl.Complete("NCCL_allreduce", "allreduce", 0, 0, 8, 1)
	if got := tl.NameTime(0, "queue_wait"); math.Abs(got-5) > 1e-12 {
		t.Fatalf("NameTime(0, queue_wait) = %v, want 5", got)
	}
	if got := tl.NameTime(1, "queue_wait"); math.Abs(got-7) > 1e-12 {
		t.Fatalf("NameTime(1, queue_wait) = %v, want 7", got)
	}
	if got := tl.NameTime(2, "queue_wait"); got != 0 {
		t.Fatalf("absent rank NameTime = %v, want 0", got)
	}
}

func TestOverlapFraction(t *testing.T) {
	tl := NewTimeline()
	// Rank 0: 4s of allreduce, 3s of it hidden behind backward.
	tl.Complete("NCCL_allreduce", "allreduce", 0, 0, 0, 4)
	tl.Complete("allreduce_overlap", "allreduce", 0, 0, 0, 3)
	if f := tl.OverlapFraction(0); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("OverlapFraction = %v, want 0.75", f)
	}
	// Rank 1: sync run, no overlap events.
	tl.Complete("NCCL_allreduce", "allreduce", 0, 1, 0, 4)
	if f := tl.OverlapFraction(1); f != 0 {
		t.Fatalf("sync OverlapFraction = %v, want 0", f)
	}
	// Clamp: accounting jitter cannot report more than 100% hidden.
	tl.Complete("NCCL_allreduce", "allreduce", 0, 2, 0, 1)
	tl.Complete("allreduce_overlap", "allreduce", 0, 2, 0, 2)
	if f := tl.OverlapFraction(2); f != 1 {
		t.Fatalf("clamped OverlapFraction = %v, want 1", f)
	}
	// No communication at all.
	if f := tl.OverlapFraction(9); f != 0 {
		t.Fatalf("empty OverlapFraction = %v, want 0", f)
	}
}
