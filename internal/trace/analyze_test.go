package trace

import (
	"math"
	"testing"
)

func analysisTimeline() *Timeline {
	tl := NewTimeline()
	// Rank 0: 0–10 io, 10–12 broadcast, 12–20 compute.
	tl.Complete("data_loading", "io", 0, 0, 0, 10)
	tl.Complete("mpi_broadcast", "broadcast", 0, 0, 10, 2)
	tl.Complete("compute", "compute", 0, 0, 12, 8)
	// Rank 1: shifted.
	tl.Complete("data_loading", "io", 0, 1, 0, 12)
	tl.Complete("compute", "compute", 0, 1, 12, 4)
	return tl
}

func TestCategoryTime(t *testing.T) {
	tl := analysisTimeline()
	ct := tl.CategoryTime(0)
	if ct["io"] != 10 || ct["broadcast"] != 2 || ct["compute"] != 8 {
		t.Fatalf("CategoryTime = %v", ct)
	}
	if len(tl.CategoryTime(7)) != 0 {
		t.Fatal("absent rank should be empty")
	}
}

func TestBusyFraction(t *testing.T) {
	tl := analysisTimeline()
	if f := tl.BusyFraction(0, "io"); math.Abs(f-0.5) > 1e-12 {
		t.Fatalf("io fraction = %v", f)
	}
	if f := tl.BusyFraction(0, "compute"); math.Abs(f-0.4) > 1e-12 {
		t.Fatalf("compute fraction = %v", f)
	}
	if f := tl.BusyFraction(1, "io"); math.Abs(f-0.75) > 1e-12 {
		t.Fatalf("rank 1 io fraction = %v", f)
	}
	if tl.BusyFraction(9, "io") != 0 {
		t.Fatal("absent rank fraction")
	}
}

func TestRanks(t *testing.T) {
	tl := analysisTimeline()
	tl.Complete("x", "io", 0, 5, 0, 1)
	got := tl.Ranks()
	want := []int{0, 1, 5}
	if len(got) != len(want) {
		t.Fatalf("Ranks = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v", got)
		}
	}
	if len(NewTimeline().Ranks()) != 0 {
		t.Fatal("empty timeline ranks")
	}
}

func TestBusyFractionOnSimTimelineShape(t *testing.T) {
	// On a naive-loader NT3 run at scale, I/O dominates rank 0's span
	// — the paper's core observation, read off the timeline.
	tl := NewTimeline()
	tl.Complete("data_loading", "io", 0, 0, 0, 126)
	tl.Complete("negotiate_broadcast", "broadcast", 0, 0, 126, 40)
	tl.Complete("compute", "compute", 0, 0, 166, 23)
	if tl.BusyFraction(0, "io") < 0.5 {
		t.Fatal("io should dominate")
	}
}
