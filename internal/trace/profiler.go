package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Profiler accumulates named phase durations, playing the role
// Python's cProfile plays in the paper: attributing total runtime to
// data loading, training, and evaluation.
type Profiler struct {
	mu     sync.Mutex
	clock  func() float64
	phases map[string]*PhaseStat
	order  []string
}

// PhaseStat is the accumulated time of one named phase.
type PhaseStat struct {
	Name  string  `json:"name"`
	Total float64 `json:"total_seconds"`
	Count int     `json:"count"`
}

// NewProfiler returns a profiler using the wall clock.
func NewProfiler() *Profiler {
	start := time.Now()
	return NewProfilerWithClock(func() float64 { return time.Since(start).Seconds() })
}

// NewProfilerWithClock returns a profiler reading the given clock
// (seconds); simulations pass their virtual clock.
func NewProfilerWithClock(clock func() float64) *Profiler {
	return &Profiler{clock: clock, phases: make(map[string]*PhaseStat)}
}

// Start begins timing a phase and returns a stop function.
//
//	defer p.Start("data_loading")()
func (p *Profiler) Start(name string) func() {
	begin := p.clock()
	return func() { p.Record(name, p.clock()-begin) }
}

// Record adds an externally measured duration to a phase.
func (p *Profiler) Record(name string, seconds float64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	st, ok := p.phases[name]
	if !ok {
		st = &PhaseStat{Name: name}
		p.phases[name] = st
		p.order = append(p.order, name)
	}
	st.Total += seconds
	st.Count++
}

// Total returns the accumulated seconds for one phase (0 if absent).
func (p *Profiler) Total(name string) float64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if st, ok := p.phases[name]; ok {
		return st.Total
	}
	return 0
}

// Stats returns all phases in first-recorded order.
func (p *Profiler) Stats() []PhaseStat {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]PhaseStat, 0, len(p.order))
	for _, name := range p.order {
		out = append(out, *p.phases[name])
	}
	return out
}

// Report renders a cProfile-style table sorted by descending total.
func (p *Profiler) Report() string {
	stats := p.Stats()
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Total > stats[j].Total })
	var b strings.Builder
	fmt.Fprintf(&b, "%-28s %10s %8s\n", "phase", "total(s)", "calls")
	for _, s := range stats {
		fmt.Fprintf(&b, "%-28s %10.3f %8d\n", s.Name, s.Total, s.Count)
	}
	return b.String()
}
