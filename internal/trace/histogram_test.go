package trace

import (
	"math"
	"sync"
	"testing"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	for _, v := range []float64{0.5, 1.5, 1.5, 3, 7, 100} {
		h.Observe(v)
	}
	if got := h.Count(); got != 6 {
		t.Fatalf("Count = %d, want 6", got)
	}
	if got := h.Sum(); got != 113.5 {
		t.Fatalf("Sum = %v, want 113.5", got)
	}
	s := h.Snapshot()
	wantCounts := []uint64{1, 2, 1, 1, 1}
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (%v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	// 100 observations: 50 in (0,1], 40 in (1,2], 10 in (4,8].
	for i := 0; i < 50; i++ {
		h.Observe(0.5)
	}
	for i := 0; i < 40; i++ {
		h.Observe(1.5)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("p50 = %v, want 1", got)
	}
	if got := h.Quantile(0.9); got != 2 {
		t.Errorf("p90 = %v, want 2", got)
	}
	if got := h.Quantile(0.99); got != 8 {
		t.Errorf("p99 = %v, want 8", got)
	}
	if got := h.Quantile(0); got != 1 {
		t.Errorf("p0 = %v, want 1 (first non-empty bucket bound)", got)
	}
}

func TestHistogramOverflowQuantileUsesMax(t *testing.T) {
	h := NewHistogram(1)
	h.Observe(50)
	h.Observe(70)
	if got := h.Quantile(0.99); got != 70 {
		t.Fatalf("overflow p99 = %v, want observed max 70", got)
	}
}

func TestHistogramEmptyAndNaN(t *testing.T) {
	h := NewHistogram(1, 2)
	if h.Quantile(0.5) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
	h.Observe(math.NaN())
	if h.Count() != 0 {
		t.Fatal("NaN observation must be ignored")
	}
}

// TestSnapshotDeltaQuantile: a window's quantile reflects only the
// observations inside the window, not the history before it.
func TestSnapshotDeltaQuantile(t *testing.T) {
	h := NewHistogram(1, 2, 4, 8)
	// History: 1000 fast observations that would dominate an all-time
	// quantile.
	for i := 0; i < 1000; i++ {
		h.Observe(0.5)
	}
	pre := h.Snapshot()
	// Window: 90 slow-ish, 10 slow.
	for i := 0; i < 90; i++ {
		h.Observe(3)
	}
	for i := 0; i < 10; i++ {
		h.Observe(5)
	}
	d := h.Snapshot().Delta(pre)
	if d.Count != 100 {
		t.Fatalf("window count = %d, want 100", d.Count)
	}
	if got := d.Quantile(0.5); got != 4 {
		t.Errorf("window p50 = %v, want 4", got)
	}
	if got := d.Quantile(0.99); got != 8 {
		t.Errorf("window p99 = %v, want 8", got)
	}
	if got := d.Mean(); math.Abs(got-3.2) > 1e-9 {
		t.Errorf("window mean = %v, want 3.2", got)
	}
	// All-time p50 is still in the fast bucket — the window isolated
	// the recent behavior.
	if got := h.Quantile(0.5); got != 1 {
		t.Errorf("all-time p50 = %v, want 1", got)
	}
}

func TestSnapshotDeltaMismatchedShapes(t *testing.T) {
	a := NewHistogram(1, 2).Snapshot()
	b := NewHistogram(1, 2, 4)
	b.Observe(1.5)
	got := b.Snapshot().Delta(a)
	if got.Count != 1 {
		t.Fatalf("mismatched shapes should fall back to the current snapshot, got %+v", got)
	}
}

func TestWindowAdvance(t *testing.T) {
	h := NewHistogram(1, 2, 4)
	h.Observe(0.5)
	w := NewWindow(h)
	h.Observe(3)
	h.Observe(3)
	d := w.Advance()
	if d.Count != 2 || d.Quantile(0.99) != 4 {
		t.Fatalf("first window = count %d p99 %v, want 2/4", d.Count, d.Quantile(0.99))
	}
	// Nothing new: the next window is empty.
	if d := w.Advance(); d.Count != 0 || d.Quantile(0.5) != 0 {
		t.Fatalf("empty window = %+v, want zero", d)
	}
	h.Observe(0.5)
	if d := w.Advance(); d.Count != 1 || d.Quantile(0.99) != 1 {
		t.Fatalf("third window = count %d, want 1", d.Count)
	}
}

func TestExponentialBounds(t *testing.T) {
	b := ExponentialBounds(0.001, 2, 4)
	want := []float64{0.001, 0.002, 0.004, 0.008}
	for i := range want {
		if math.Abs(b[i]-want[i]) > 1e-12 {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewHistogram(ExponentialBounds(1, 2, 10)...)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(float64(g + 1))
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != 8000 {
		t.Fatalf("Count = %d, want 8000", got)
	}
}
