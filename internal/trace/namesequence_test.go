package trace

import (
	"reflect"
	"testing"
)

// TestNameSequenceFiltersAndOrders: the sequence is one TID's event
// names in start-time order, optionally restricted by an accept
// function — the shape the scenario harness compares between twin
// runs, where names must line up even though every timestamp differs.
func TestNameSequenceFiltersAndOrders(t *testing.T) {
	tl := NewTimeline()
	tl.Complete("second", "train", 0, 1, 2.0, 0.5)
	tl.Complete("first", "train", 0, 1, 1.0, 0.5)
	tl.Complete("other-tid", "train", 0, 2, 0.5, 0.5)
	tl.Complete("third", "comm", 0, 1, 3.0, 0.5)

	got := tl.NameSequence(1, nil)
	want := []string{"first", "second", "third"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NameSequence(1, nil) = %v, want %v", got, want)
	}

	onlyTrainNames := map[string]bool{"first": true, "second": true}
	got = tl.NameSequence(1, func(name string) bool { return onlyTrainNames[name] })
	want = []string{"first", "second"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("filtered NameSequence = %v, want %v", got, want)
	}

	if got := tl.NameSequence(9, nil); len(got) != 0 {
		t.Fatalf("NameSequence for an unknown TID = %v, want empty", got)
	}
}

// TestNameSequenceBreaksTiesByInsertion: events sharing a start time
// keep insertion order, so single-goroutine spans reflect program
// order deterministically.
func TestNameSequenceBreaksTiesByInsertion(t *testing.T) {
	tl := NewTimeline()
	tl.Complete("a", "c", 0, 1, 1.0, 0)
	tl.Complete("b", "c", 0, 1, 1.0, 0)
	tl.Complete("c", "c", 0, 1, 1.0, 0)
	want := []string{"a", "b", "c"}
	if got := tl.NameSequence(1, nil); !reflect.DeepEqual(got, want) {
		t.Fatalf("tied starts = %v, want %v", got, want)
	}
}
