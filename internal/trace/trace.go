// Package trace records Horovod-style activity timelines in the
// Chrome trace-event JSON format (viewable at chrome://tracing), and
// provides a cProfile-like phase profiler. Timestamps are float64
// seconds so the same machinery serves both wall-clock (real training)
// and virtual-clock (simulated large-scale) runs.
package trace

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one complete ("ph":"X") trace event. Times are seconds;
// serialization converts to the microseconds Chrome expects.
type Event struct {
	Name  string  // e.g. "negotiate_broadcast", "NCCL_allreduce"
	Cat   string  // e.g. "broadcast", "allreduce"
	Start float64 // seconds
	Dur   float64 // seconds
	PID   int     // process / node
	TID   int     // rank / device
	Args  map[string]any
}

// End returns the event's end time in seconds.
func (e Event) End() float64 { return e.Start + e.Dur }

// Timeline is a concurrency-safe collector of trace events.
type Timeline struct {
	mu     sync.Mutex
	events []Event
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// Add records one event.
func (t *Timeline) Add(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Complete records a finished span.
func (t *Timeline) Complete(name, cat string, pid, tid int, start, dur float64) {
	t.Add(Event{Name: name, Cat: cat, PID: pid, TID: tid, Start: start, Dur: dur})
}

// Events returns a copy of all recorded events sorted by start time.
func (t *Timeline) Events() []Event {
	t.mu.Lock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	t.mu.Unlock()
	sort.SliceStable(out, func(i, j int) bool { return out[i].Start < out[j].Start })
	return out
}

// Len returns the number of recorded events.
func (t *Timeline) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Filter returns the events whose Name equals name, sorted by start.
func (t *Timeline) Filter(name string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Name == name {
			out = append(out, e)
		}
	}
	return out
}

// FilterCat returns the events whose Cat equals cat, sorted by start.
func (t *Timeline) FilterCat(cat string) []Event {
	var out []Event
	for _, e := range t.Events() {
		if e.Cat == cat {
			out = append(out, e)
		}
	}
	return out
}

// NameSequence returns the ordered event-name sequence for one TID,
// restricted to the names accept admits (nil accepts everything).
// Events are ordered by start time with insertion order breaking ties,
// so for spans emitted by a single goroutine the sequence reflects
// program order. This is the shape the scenario harness compares: two
// runs of the same seed must produce identical per-rank sequences even
// though every wall-clock timestamp differs.
func (t *Timeline) NameSequence(tid int, accept func(name string) bool) []string {
	var out []string
	for _, e := range t.Events() {
		if e.TID != tid {
			continue
		}
		if accept != nil && !accept(e.Name) {
			continue
		}
		out = append(out, e.Name)
	}
	return out
}

// TotalDuration sums the duration of all events with the given name.
func (t *Timeline) TotalDuration(name string) float64 {
	sum := 0.0
	for _, e := range t.Events() {
		if e.Name == name {
			sum += e.Dur
		}
	}
	return sum
}

// Span returns the earliest start and latest end among events with the
// given category; ok is false if there are none. This is how the
// paper reads "the broadcast takes 43 s" off the Horovod timeline.
func (t *Timeline) Span(cat string) (start, end float64, ok bool) {
	first := true
	for _, e := range t.Events() {
		if e.Cat != cat {
			continue
		}
		if first || e.Start < start {
			start = e.Start
		}
		if first || e.End() > end {
			end = e.End()
		}
		first = false
	}
	return start, end, !first
}

// chromeEvent is the on-disk representation.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	TS   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteJSON serializes the timeline in Chrome trace format
// ({"traceEvents": [...]}).
func (t *Timeline) WriteJSON(w io.Writer) error {
	evs := t.Events()
	out := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: make([]chromeEvent, len(evs))}
	for i, e := range evs {
		out.TraceEvents[i] = chromeEvent{
			Name: e.Name, Cat: e.Cat, Ph: "X",
			TS: e.Start * 1e6, Dur: e.Dur * 1e6,
			PID: e.PID, TID: e.TID, Args: e.Args,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadJSON parses a timeline previously written with WriteJSON.
func ReadJSON(r io.Reader) (*Timeline, error) {
	var in struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}
	if err := json.NewDecoder(r).Decode(&in); err != nil {
		return nil, fmt.Errorf("trace: decoding: %w", err)
	}
	t := NewTimeline()
	for _, ce := range in.TraceEvents {
		t.Add(Event{
			Name: ce.Name, Cat: ce.Cat,
			Start: ce.TS / 1e6, Dur: ce.Dur / 1e6,
			PID: ce.PID, TID: ce.TID, Args: ce.Args,
		})
	}
	return t, nil
}
