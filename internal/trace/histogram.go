package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a concurrency-safe fixed-bucket histogram. It is the
// aggregation primitive the serving layer builds its request-latency
// and batch-size metrics on: unlike a Timeline, which keeps every
// event, a Histogram holds O(buckets) state no matter how long the
// process runs, so it is safe inside a server that handles millions
// of observations.
//
// Bucket i counts observations v with bounds[i-1] < v <= bounds[i];
// one implicit overflow bucket counts v > bounds[len-1].
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is overflow
	sum    float64
	count  uint64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. It panics if bounds is empty or not strictly
// ascending, since a malformed histogram would silently misreport.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("trace: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("trace: histogram bounds not ascending at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExponentialBounds returns n ascending bounds starting at start and
// multiplying by factor — the usual shape for latency buckets.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("trace: ExponentialBounds wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. NaN is ignored (a poisoned observation
// must not poison the aggregate).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 <= q <= 1): the upper bound of the bucket holding the q-th
// observation. Observations beyond the last bound report the observed
// maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Snapshot is a point-in-time copy of a histogram for serialization.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	return s
}
