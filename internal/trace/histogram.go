package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
)

// Histogram is a concurrency-safe fixed-bucket histogram. It is the
// aggregation primitive the serving layer builds its request-latency
// and batch-size metrics on: unlike a Timeline, which keeps every
// event, a Histogram holds O(buckets) state no matter how long the
// process runs, so it is safe inside a server that handles millions
// of observations.
//
// Bucket i counts observations v with bounds[i-1] < v <= bounds[i];
// one implicit overflow bucket counts v > bounds[len-1].
type Histogram struct {
	mu     sync.Mutex
	bounds []float64 // ascending upper bounds
	counts []uint64  // len(bounds)+1; last is overflow
	sum    float64
	count  uint64
	min    float64
	max    float64
}

// NewHistogram returns a histogram over the given ascending bucket
// upper bounds. It panics if bounds is empty or not strictly
// ascending, since a malformed histogram would silently misreport.
func NewHistogram(bounds ...float64) *Histogram {
	if len(bounds) == 0 {
		panic("trace: histogram needs at least one bucket bound")
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic(fmt.Sprintf("trace: histogram bounds not ascending at %d: %v <= %v",
				i, bounds[i], bounds[i-1]))
		}
	}
	b := make([]float64, len(bounds))
	copy(b, bounds)
	return &Histogram{bounds: b, counts: make([]uint64, len(b)+1)}
}

// ExponentialBounds returns n ascending bounds starting at start and
// multiplying by factor — the usual shape for latency buckets.
func ExponentialBounds(start, factor float64, n int) []float64 {
	if start <= 0 || factor <= 1 || n < 1 {
		panic("trace: ExponentialBounds wants start > 0, factor > 1, n >= 1")
	}
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value. NaN is ignored (a poisoned observation
// must not poison the aggregate).
func (h *Histogram) Observe(v float64) {
	if math.IsNaN(v) {
		return
	}
	h.mu.Lock()
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	if h.count == 0 || v < h.min {
		h.min = v
	}
	if h.count == 0 || v > h.max {
		h.max = v
	}
	h.count++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Mean returns the mean observation (0 when empty).
func (h *Histogram) Mean() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return h.sum / float64(h.count)
}

// Quantile returns an upper-bound estimate of the q-quantile
// (0 <= q <= 1): the upper bound of the bucket holding the q-th
// observation. Observations beyond the last bound report the observed
// maximum. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum >= rank {
			if i < len(h.bounds) {
				return h.bounds[i]
			}
			return h.max
		}
	}
	return h.max
}

// Snapshot is a point-in-time copy of a histogram for serialization.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []uint64  `json:"counts"` // len(Bounds)+1, last is overflow
	Count  uint64    `json:"count"`
	Sum    float64   `json:"sum"`
	Min    float64   `json:"min"`
	Max    float64   `json:"max"`
}

// Snapshot returns a consistent copy of the histogram's state.
func (h *Histogram) Snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: append([]uint64(nil), h.counts...),
		Count:  h.count,
		Sum:    h.sum,
		Min:    h.min,
		Max:    h.max,
	}
	return s
}

// Delta returns the observations recorded between prev and s as a
// snapshot of their own: bucket counts, total count, and sum are
// differenced, while Min/Max keep s's all-time values (a histogram
// does not remember per-window extremes). prev must be an earlier
// snapshot of the same histogram; a shape mismatch returns s
// unchanged, which degrades to all-time statistics rather than
// misreporting.
func (s HistogramSnapshot) Delta(prev HistogramSnapshot) HistogramSnapshot {
	if len(prev.Counts) != len(s.Counts) || prev.Count > s.Count {
		return s
	}
	d := HistogramSnapshot{
		Bounds: s.Bounds,
		Counts: make([]uint64, len(s.Counts)),
		Count:  s.Count - prev.Count,
		Sum:    s.Sum - prev.Sum,
		Min:    s.Min,
		Max:    s.Max,
	}
	for i := range s.Counts {
		if s.Counts[i] < prev.Counts[i] {
			return s
		}
		d.Counts[i] = s.Counts[i] - prev.Counts[i]
	}
	return d
}

// Quantile returns the same upper-bound q-quantile estimate
// Histogram.Quantile computes, over the snapshot's counts. Combined
// with Delta it yields windowed quantiles — the p99 of just the
// observations since the previous snapshot — which is what an SLO
// controller or a benchmark window needs, where the all-time quantile
// would be dominated by history.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(s.Count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i, c := range s.Counts {
		cum += c
		if cum >= rank {
			if i < len(s.Bounds) {
				return s.Bounds[i]
			}
			return s.Max
		}
	}
	return s.Max
}

// Mean returns the snapshot's mean observation (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Window turns successive snapshots of one histogram into
// per-interval deltas: each Advance returns what was observed since
// the previous Advance (or since NewWindow). One Window per consumer —
// it holds the consumer's private previous snapshot.
type Window struct {
	h    *Histogram
	prev HistogramSnapshot
}

// NewWindow starts a window over h at its current state.
func NewWindow(h *Histogram) *Window {
	return &Window{h: h, prev: h.Snapshot()}
}

// Advance returns the observations since the previous Advance and
// moves the window forward.
func (w *Window) Advance() HistogramSnapshot {
	cur := w.h.Snapshot()
	d := cur.Delta(w.prev)
	w.prev = cur
	return d
}
