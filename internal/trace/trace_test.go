package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTimelineAddAndSort(t *testing.T) {
	tl := NewTimeline()
	tl.Complete("b", "compute", 0, 1, 5, 1)
	tl.Complete("a", "compute", 0, 0, 1, 2)
	evs := tl.Events()
	if len(evs) != 2 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].Name != "a" || evs[1].Name != "b" {
		t.Fatalf("not sorted by start: %v", evs)
	}
	if evs[0].End() != 3 {
		t.Fatalf("End = %v", evs[0].End())
	}
}

func TestFilterAndTotalDuration(t *testing.T) {
	tl := NewTimeline()
	tl.Complete("allreduce", "allreduce", 0, 0, 0, 2)
	tl.Complete("allreduce", "allreduce", 0, 1, 3, 4)
	tl.Complete("broadcast", "broadcast", 0, 0, 1, 1)
	if got := tl.TotalDuration("allreduce"); got != 6 {
		t.Fatalf("TotalDuration = %v", got)
	}
	if got := len(tl.Filter("allreduce")); got != 2 {
		t.Fatalf("Filter = %d events", got)
	}
	if got := len(tl.FilterCat("broadcast")); got != 1 {
		t.Fatalf("FilterCat = %d events", got)
	}
}

func TestSpan(t *testing.T) {
	tl := NewTimeline()
	if _, _, ok := tl.Span("broadcast"); ok {
		t.Fatal("Span of empty timeline reported ok")
	}
	tl.Complete("negotiate_broadcast", "broadcast", 0, 0, 10, 5)
	tl.Complete("mpi_broadcast", "broadcast", 0, 1, 12, 8)
	tl.Complete("allreduce", "allreduce", 0, 0, 30, 1)
	start, end, ok := tl.Span("broadcast")
	if !ok || start != 10 || end != 20 {
		t.Fatalf("Span = %v..%v ok=%v", start, end, ok)
	}
}

func TestWriteReadJSONRoundTrip(t *testing.T) {
	tl := NewTimeline()
	tl.Add(Event{Name: "NCCL_allreduce", Cat: "allreduce", Start: 1.5, Dur: 0.25, PID: 2, TID: 3,
		Args: map[string]any{"bytes": 1024.0}})
	var buf bytes.Buffer
	if err := tl.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"traceEvents"`) {
		t.Fatalf("missing traceEvents key: %s", buf.String())
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	evs := back.Events()
	if len(evs) != 1 {
		t.Fatalf("round trip lost events: %d", len(evs))
	}
	e := evs[0]
	if e.Name != "NCCL_allreduce" || e.Cat != "allreduce" || e.Start != 1.5 || e.Dur != 0.25 || e.PID != 2 || e.TID != 3 {
		t.Fatalf("round trip mangled event: %+v", e)
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
}

func TestTimelineConcurrentAdd(t *testing.T) {
	tl := NewTimeline()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tl.Complete("e", "c", 0, i, float64(j), 1)
			}
		}(i)
	}
	wg.Wait()
	if tl.Len() != 800 {
		t.Fatalf("Len = %d, want 800", tl.Len())
	}
}

func TestProfilerRecordAndReport(t *testing.T) {
	now := 0.0
	p := NewProfilerWithClock(func() float64 { return now })
	stop := p.Start("data_loading")
	now = 5
	stop()
	p.Record("training", 10)
	p.Record("training", 2)
	if got := p.Total("data_loading"); got != 5 {
		t.Fatalf("data_loading = %v", got)
	}
	if got := p.Total("training"); got != 12 {
		t.Fatalf("training = %v", got)
	}
	if got := p.Total("absent"); got != 0 {
		t.Fatalf("absent = %v", got)
	}
	stats := p.Stats()
	if len(stats) != 2 || stats[0].Name != "data_loading" || stats[1].Count != 2 {
		t.Fatalf("Stats = %+v", stats)
	}
	rep := p.Report()
	if !strings.Contains(rep, "training") || !strings.Contains(rep, "12.000") {
		t.Fatalf("Report = %q", rep)
	}
	// Report sorts by total descending: training first.
	if strings.Index(rep, "training") > strings.Index(rep, "data_loading") {
		t.Fatal("Report not sorted by total")
	}
}

func TestProfilerWallClock(t *testing.T) {
	p := NewProfiler()
	p.Start("x")()
	if p.Total("x") < 0 {
		t.Fatal("negative duration")
	}
}
