package trace

// Analysis helpers over recorded timelines — the questions the paper
// answers by eyeballing chrome://tracing ("how long is the broadcast?",
// "what fraction of the run is communication?") as code.

// CategoryTime sums event durations per category for one rank (tid).
func (t *Timeline) CategoryTime(tid int) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range t.Events() {
		if e.TID == tid {
			out[e.Cat] += e.Dur
		}
	}
	return out
}

// BusyFraction returns the share of rank tid's active span spent in
// the given category (0 when the rank has no events).
func (t *Timeline) BusyFraction(tid int, cat string) float64 {
	var total, in float64
	var start, end float64
	first := true
	for _, e := range t.Events() {
		if e.TID != tid {
			continue
		}
		if first || e.Start < start {
			start = e.Start
		}
		if first || e.End() > end {
			end = e.End()
		}
		first = false
		if e.Cat == cat {
			in += e.Dur
		}
	}
	if first {
		return 0
	}
	total = end - start
	if total <= 0 {
		return 0
	}
	return in / total
}

// NameTime sums the durations of all events with the given name for
// one rank (tid). With the overlap pipeline this answers "how long
// did gradients sit in the queue?" (queue_wait) and "how much
// communication hid behind backward compute?" (allreduce_overlap).
func (t *Timeline) NameTime(tid int, name string) float64 {
	var sum float64
	for _, e := range t.Events() {
		if e.TID == tid && e.Name == name {
			sum += e.Dur
		}
	}
	return sum
}

// OverlapFraction returns the share of rank tid's allreduce-category
// communication time that ran concurrently with backward compute,
// from the allreduce_overlap events the async pipeline records. 0
// without overlap events (sync runs hide nothing).
func (t *Timeline) OverlapFraction(tid int) float64 {
	var comm, hidden float64
	for _, e := range t.Events() {
		if e.TID != tid {
			continue
		}
		switch e.Name {
		case "NCCL_allreduce":
			comm += e.Dur
		case "allreduce_overlap":
			hidden += e.Dur
		}
	}
	if comm <= 0 {
		return 0
	}
	f := hidden / comm
	if f > 1 {
		f = 1
	}
	return f
}

// Ranks returns the distinct TIDs present, ascending.
func (t *Timeline) Ranks() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range t.Events() {
		if !seen[e.TID] {
			seen[e.TID] = true
			out = append(out, e.TID)
		}
	}
	// Events() is start-sorted; sort TIDs properly.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
