package trace

// Analysis helpers over recorded timelines — the questions the paper
// answers by eyeballing chrome://tracing ("how long is the broadcast?",
// "what fraction of the run is communication?") as code.

// CategoryTime sums event durations per category for one rank (tid).
func (t *Timeline) CategoryTime(tid int) map[string]float64 {
	out := make(map[string]float64)
	for _, e := range t.Events() {
		if e.TID == tid {
			out[e.Cat] += e.Dur
		}
	}
	return out
}

// BusyFraction returns the share of rank tid's active span spent in
// the given category (0 when the rank has no events).
func (t *Timeline) BusyFraction(tid int, cat string) float64 {
	var total, in float64
	var start, end float64
	first := true
	for _, e := range t.Events() {
		if e.TID != tid {
			continue
		}
		if first || e.Start < start {
			start = e.Start
		}
		if first || e.End() > end {
			end = e.End()
		}
		first = false
		if e.Cat == cat {
			in += e.Dur
		}
	}
	if first {
		return 0
	}
	total = end - start
	if total <= 0 {
		return 0
	}
	return in / total
}

// Ranks returns the distinct TIDs present, ascending.
func (t *Timeline) Ranks() []int {
	seen := map[int]bool{}
	var out []int
	for _, e := range t.Events() {
		if !seen[e.TID] {
			seen[e.TID] = true
			out = append(out, e.TID)
		}
	}
	// Events() is start-sorted; sort TIDs properly.
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}
