package fleet

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"os"
	"sync"
	"testing"
	"time"

	"candle/internal/checkpoint"
	"candle/internal/nn"
	"candle/internal/serve"
)

// Replica lifecycle edges, against real serve.Servers (real weights,
// real micro-batcher, real staged-reload endpoints): joining under
// load, dying abruptly mid-load, corrupt checkpoints, and the pinned
// guarantee that no client session ever observes the fleet's
// generation mixed or moving backwards.

const (
	lcBench = "T"
	lcDim   = 6
)

func lcFactory() *nn.Sequential {
	return nn.NewSequential("t",
		nn.NewDense(8), nn.NewReLU(),
		nn.NewDense(3), nn.NewSoftmax(),
	)
}

func lcWriteCkpt(t *testing.T, dir string, epoch int, seed int64) {
	t.Helper()
	m := lcFactory()
	if err := m.Compile(lcDim, nn.CategoricalCrossEntropy{}, nn.NewSGD(0.01), seed); err != nil {
		t.Fatal(err)
	}
	s := &checkpoint.Snapshot{
		Benchmark: lcBench,
		Epoch:     epoch,
		Step:      epoch * 100,
		Weights:   m.WeightsVector(),
	}
	if err := checkpoint.Save(checkpoint.FileFor(dir, lcBench, epoch), s); err != nil {
		t.Fatal(err)
	}
}

func lcCorruptCkpt(t *testing.T, dir string, epoch int) {
	t.Helper()
	path := checkpoint.FileFor(dir, lcBench, epoch)
	if err := os.WriteFile(path, []byte("partial write, no footer"), 0o644); err != nil {
		t.Fatal(err)
	}
}

// realReplica is a live serve.Server behind an httptest listener
// (which can sever its client connections, standing in for an abrupt
// process death in-process; cmd/candle-fleet's smoke test does it
// with a real SIGKILL).
type realReplica struct {
	id  string
	s   *serve.Server
	srv *httptest.Server
}

func (rr *realReplica) addr() string { return rr.srv.Listener.Addr().String() }

func startRealReplica(t *testing.T, id, dir string) *realReplica {
	t.Helper()
	s, err := serve.New(serve.Config{
		Benchmark:   lcBench,
		Dir:         dir,
		Factory:     lcFactory,
		Loss:        nn.CategoricalCrossEntropy{},
		InputDim:    lcDim,
		MaxBatch:    8,
		MaxWait:     time.Millisecond,
		Replicas:    1,
		QueueDepth:  256,
		ReloadEvery: -1, // reloads are the router's call
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	rr := &realReplica{id: id, s: s, srv: srv}
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return rr
}

func registerReal(t *testing.T, ctlAddr string, rr *realReplica) {
	t.Helper()
	epoch, step := rr.s.Generation()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if _, err := Register(ctx, "tcp", ctlAddr, rr.id, rr.addr(), epoch, step); err != nil {
		t.Fatalf("registering %s: %v", rr.id, err)
	}
}

const lcBody = `{"features":[0.1,0.2,0.3,0.4,0.5,0.6]}`

func TestLifecycleCoordinatedReload(t *testing.T) {
	dir := t.TempDir()
	lcWriteCkpt(t, dir, 1, 42)
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startRealReplica(t, "a", dir))
	registerReal(t, ctlAddr, startRealReplica(t, "b", dir))

	resp, decoded := postPredict(t, baseURL, lcBody, nil)
	if resp.StatusCode != http.StatusOK || decoded["epoch"].(float64) != 1 {
		t.Fatalf("pre-reload: %d %v", resp.StatusCode, decoded)
	}

	lcWriteCkpt(t, dir, 2, 43)
	epoch, step, err := r.Reload()
	if err != nil || epoch != 2 || step != 200 {
		t.Fatalf("Reload = (%d, %d, %v), want (2, 200, nil)", epoch, step, err)
	}
	for i := 0; i < 10; i++ {
		if _, decoded = postPredict(t, baseURL, lcBody, nil); decoded["epoch"].(float64) != 2 {
			t.Fatalf("post-reload response on old generation: %v", decoded)
		}
	}
}

// TestLifecycleCorruptNewestHoldsFleet: one replica's copy of the
// newest checkpoint is damaged; the fleet generation must not
// advance, and the router's /healthz must say why.
func TestLifecycleCorruptNewestHoldsFleet(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	lcWriteCkpt(t, dirA, 1, 42)
	lcWriteCkpt(t, dirB, 1, 42)
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startRealReplica(t, "a", dirA))
	registerReal(t, ctlAddr, startRealReplica(t, "b", dirB))

	// Epoch 2 lands intact on b, torn on a.
	lcWriteCkpt(t, dirB, 2, 43)
	lcCorruptCkpt(t, dirA, 2)

	if _, _, err := r.Reload(); !errors.Is(err, ErrReloadHeldBack) {
		t.Fatalf("reload with a torn checkpoint: %v, want ErrReloadHeldBack", err)
	}
	if e, _ := r.Generation(); e != 1 {
		t.Fatalf("fleet advanced to epoch %d past an unloadable copy", e)
	}
	h := getHealth(t, baseURL)
	if h["status"] != "degraded" || h["last_reload_error"] == "" {
		t.Fatalf("healthz = %v, want degraded + reason", h)
	}
	// Every response still comes from epoch 1 — no half-upgraded fleet.
	for i := 0; i < 10; i++ {
		if _, decoded := postPredict(t, baseURL, lcBody, nil); decoded["epoch"].(float64) != 1 {
			t.Fatalf("mixed generation served during held-back round: %v", decoded)
		}
	}

	// The torn file is replaced by a good copy: fleet advances.
	lcWriteCkpt(t, dirA, 2, 43)
	if epoch, _, err := r.Reload(); err != nil || epoch != 2 {
		t.Fatalf("reload after repair = (%d, _, %v)", epoch, err)
	}
}

// loadLoop hammers the router from `clients` goroutines until stop
// closes, recording per-client status counts and epoch sequences.
type loadResult struct {
	mu       sync.Mutex
	wg       sync.WaitGroup
	stop     chan struct{}
	statuses map[int]int
	epochSeq [][]float64 // per-client observed epochs, in order
}

// halt stops the clients and waits for them; only after halt returns
// is it safe to read statuses/epochSeq without the lock.
func (res *loadResult) halt() {
	close(res.stop)
	res.wg.Wait()
}

func runLoadLoop(t *testing.T, baseURL string, clients int, sticky bool) *loadResult {
	t.Helper()
	res := &loadResult{
		stop:     make(chan struct{}),
		statuses: make(map[int]int),
		epochSeq: make([][]float64, clients),
	}
	stop := res.stop
	for c := 0; c < clients; c++ {
		res.wg.Add(1)
		go func(c int) {
			defer res.wg.Done()
			hdr := map[string]string{}
			if sticky {
				hdr["X-Session"] = "client-" + string(rune('a'+c))
			}
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, decoded := postPredict(t, baseURL, lcBody, hdr)
				res.mu.Lock()
				res.statuses[resp.StatusCode]++
				if e, ok := decoded["epoch"].(float64); ok {
					res.epochSeq[c] = append(res.epochSeq[c], e)
				}
				res.mu.Unlock()
			}
		}(c)
	}
	return res
}

// failures counts 5xx responses; call after halt.
func (res *loadResult) failures() int {
	n := 0
	for code, count := range res.statuses {
		if code >= 500 {
			n += count
		}
	}
	return n
}

// TestJoinMidLoad: a replica registering while traffic is flowing
// starts taking a share of it without any request failing.
func TestJoinMidLoad(t *testing.T) {
	dir := t.TempDir()
	lcWriteCkpt(t, dir, 1, 42)
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startRealReplica(t, "a", dir))

	res := runLoadLoop(t, baseURL, 4, false)
	time.Sleep(50 * time.Millisecond)

	late := startRealReplica(t, "b", dir)
	registerReal(t, ctlAddr, late)
	// The joiner takes traffic (the router rebuilt its route set).
	waitFor(t, "joiner serving", func() bool { return late.s.Metrics().Requests() > 0 })
	res.halt()

	if n := res.failures(); n != 0 {
		t.Fatalf("%d requests failed while a replica joined (statuses %v)", n, res.statuses)
	}
}

// TestKillMidLoad: a replica dying abruptly under load (connections
// severed, no drain) must not fail any admitted request — the router
// retries them on the survivor. Zero 5xx is the bar.
func TestKillMidLoad(t *testing.T) {
	dir := t.TempDir()
	lcWriteCkpt(t, dir, 1, 42)
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startRealReplica(t, "a", dir))
	victim := startRealReplica(t, "b", dir)
	registerReal(t, ctlAddr, victim)

	res := runLoadLoop(t, baseURL, 4, false)
	time.Sleep(50 * time.Millisecond)

	// Abrupt death: open connections reset, port goes dark.
	victim.srv.CloseClientConnections()
	victim.srv.Close()

	// Keep the load up through detection and drain.
	waitFor(t, "victim drained", func() bool {
		for _, m := range r.Members() {
			if m.ID == "b" {
				return !m.Healthy
			}
		}
		return false
	})
	time.Sleep(50 * time.Millisecond)
	res.halt()

	if n := res.failures(); n != 0 {
		t.Fatalf("%d admitted requests failed across a replica kill (statuses %v)", n, res.statuses)
	}
	if ok := res.statuses[http.StatusOK]; ok == 0 {
		t.Fatal("load loop recorded no successes")
	}
}

// TestReloadAtomicUnderLoad pins the fleet's central guarantee: with
// requests in flight through two reload rounds, every client sees its
// sequence of serving generations monotonically non-decreasing —
// never mixed, never backwards.
func TestReloadAtomicUnderLoad(t *testing.T) {
	dir := t.TempDir()
	lcWriteCkpt(t, dir, 1, 42)
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startRealReplica(t, "a", dir))
	registerReal(t, ctlAddr, startRealReplica(t, "b", dir))

	res := runLoadLoop(t, baseURL, 4, true) // sticky: one session per client

	for epoch := 2; epoch <= 3; epoch++ {
		time.Sleep(30 * time.Millisecond)
		lcWriteCkpt(t, dir, epoch, int64(40+epoch))
		if got, _, err := r.Reload(); err != nil || got != epoch {
			t.Fatalf("Reload to %d = (%d, _, %v)", epoch, got, err)
		}
	}
	time.Sleep(30 * time.Millisecond)
	res.halt()

	if n := res.failures(); n != 0 {
		t.Fatalf("%d requests failed across reloads (statuses %v)", n, res.statuses)
	}
	sawTransition := false
	for c, seq := range res.epochSeq {
		for i := 1; i < len(seq); i++ {
			if seq[i] < seq[i-1] {
				t.Fatalf("client %d observed generation going backwards: %v -> %v (seq %v)",
					c, seq[i-1], seq[i], seq)
			}
			if seq[i] != seq[i-1] {
				sawTransition = true
			}
		}
		if len(seq) > 0 && seq[len(seq)-1] != 3 {
			t.Fatalf("client %d ended on epoch %v, want 3", c, seq[len(seq)-1])
		}
	}
	if !sawTransition {
		t.Fatal("no client observed a generation transition; the test raced past the reloads")
	}
}
