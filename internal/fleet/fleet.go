// Package fleet replicates the serving tier: a stateless HTTP router
// in front of N candle-serve replica processes. It is the serving
// analogue of the paper's multi-node scaling study — where training
// scales by adding Horovod ranks behind a rendezvous, serving scales
// by adding replicas behind a router — and it borrows the same
// control-plane machinery: replicas register over the JSON-lines
// protocol internal/launch established, with the same typed join
// errors and generation stamps.
//
// The router owns three loops:
//
//   - Balancing. Stateless requests go to the less loaded of two
//     randomly chosen healthy replicas (power-of-two-choices, which
//     tracks least-loaded within a constant factor at a fraction of
//     the bookkeeping); session-sticky requests (X-Session header)
//     ride a consistent-hash ring so one session keeps hitting one
//     replica while membership churn only moves 1/N of sessions.
//
//   - Health. Every HealthEvery the router probes each replica's
//     /healthz; DeadAfter consecutive failures drain the replica out
//     of the route set (in-flight failovers retry elsewhere), and a
//     recovered replica is routed around until its generation catches
//     back up to the fleet's.
//
//   - Reload. Checkpoint hot-reload is coordinated, not autonomous:
//     the router peeks every replica's newest loadable generation,
//     stages the fleet-wide minimum everywhere (two-phase), and
//     commits the bump inside one pause window, so no client session
//     ever observes two generations at once or a generation moving
//     backwards. One replica with a corrupt newest checkpoint holds
//     the whole fleet back — visibly, on the router's /healthz —
//     rather than splitting the fleet across generations.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Config describes one router.
type Config struct {
	// HealthEvery is the per-replica health probe cadence
	// (default 200ms).
	HealthEvery time.Duration
	// DeadAfter is how many consecutive failed probes drain a replica
	// (default 2).
	DeadAfter int
	// ReloadEvery is the coordinated-reload poll cadence (default 2s;
	// negative disables the loop — reloads then happen only via the
	// POST /fleet/reload admin endpoint).
	ReloadEvery time.Duration
	// MaxAttempts bounds how many distinct replicas one request may
	// try before the router gives up with 502 (default 3).
	MaxAttempts int
	// ProbeTimeout bounds one health probe or control call
	// (default 2s).
	ProbeTimeout time.Duration
	// Client issues proxied and control requests (default: a
	// keep-alive client with sane limits).
	Client *http.Client
}

func (c *Config) applyDefaults() {
	if c.HealthEvery <= 0 {
		c.HealthEvery = 200 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 2
	}
	if c.ReloadEvery == 0 {
		c.ReloadEvery = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 2 * time.Second
	}
	if c.Client == nil {
		c.Client = &http.Client{
			Transport: &http.Transport{
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     30 * time.Second,
			},
		}
	}
}

// gen packs a checkpoint generation (epoch, step) into one int64 so
// members and the fleet can publish theirs atomically. Step is
// truncated to 32 bits, which outlives any plausible training run.
func packGen(epoch, step int) int64 { return int64(epoch)<<32 | int64(uint32(step)) }

func unpackGen(g int64) (epoch, step int) { return int(g >> 32), int(uint32(g)) }

// member is one registered replica. Health and generation are written
// by the health/reload loops and read lock-free on the proxy path.
type member struct {
	id   string
	addr string // host:port of the replica's HTTP listener
	// pid is the replica's process id (0 if not reported); atomic
	// because the health prober refreshes it while /healthz reads it.
	pid atomic.Int64

	inflight atomic.Int64 // proxied requests currently outstanding
	healthy  atomic.Bool
	fails    atomic.Int32 // consecutive failed probes
	gen      atomic.Int64 // packed generation the replica last reported
	proxied  atomic.Uint64
	failures atomic.Uint64 // proxy attempts that errored on this member
}

func (m *member) url(path string) string { return "http://" + m.addr + path }

// Router fronts the fleet.
type Router struct {
	cfg     Config
	metrics *Metrics

	mu      sync.Mutex // membership, fleet generation transitions
	members map[string]*member

	// fleetGen is the packed generation every route-eligible replica
	// serves; 0 means "no replica has joined yet".
	fleetGen atomic.Int64

	// route is the immutable routing view (healthy, generation-matching
	// members plus their hash ring), rebuilt on any membership, health,
	// or generation change.
	route atomic.Pointer[routeSet]

	// pause gates proxied requests around a commit wave: the proxy
	// path holds it for read across a whole request (failovers
	// included), the reload coordinator holds it for write while
	// committing every replica. That exclusion is what makes the
	// fleet-wide generation bump atomic from any client's view.
	pause sync.RWMutex

	// reload state surfaced on the router's /healthz.
	rmu           sync.Mutex
	lastReloadErr string
	reloads       int

	ctlMu  sync.Mutex
	ctlLn  net.Listener
	ctlWG  sync.WaitGroup
	httpMu  sync.Mutex
	httpLn  net.Listener
	httpSrv *http.Server

	stopc    chan struct{}
	loopWG   sync.WaitGroup
	stopOnce sync.Once
}

// NewRouter builds a router with no members; replicas arrive through
// the control plane (ServeControl / Register).
func NewRouter(cfg Config) *Router {
	cfg.applyDefaults()
	r := &Router{
		cfg:     cfg,
		metrics: newMetrics(),
		members: make(map[string]*member),
		stopc:   make(chan struct{}),
	}
	r.route.Store(&routeSet{})
	r.loopWG.Add(1)
	go r.healthLoop()
	if cfg.ReloadEvery > 0 {
		r.loopWG.Add(1)
		go r.reloadLoop()
	}
	return r
}

// register adds (or, for a dead predecessor, replaces) a member. It
// is the control plane's entry point; the typed errors cross the wire
// via launch.ErrCode.
func (r *Router) register(id, addr string, pid, epoch, step int) (*member, error) {
	if id == "" || addr == "" {
		return nil, errors.New("fleet: join needs id and addr")
	}
	if _, _, err := net.SplitHostPort(addr); err != nil {
		return nil, fmt.Errorf("fleet: join addr %q: %w", addr, err)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if old, ok := r.members[id]; ok {
		// A live replica re-registering under the same id is an
		// imposter (or a split brain); a dead one is a restart, and the
		// replacement inherits the slot.
		if old.healthy.Load() {
			return nil, fmt.Errorf("fleet: replica %q already registered: %w",
				id, ErrDuplicateReplica)
		}
		delete(r.members, id)
	}
	m := &member{id: id, addr: addr}
	m.pid.Store(int64(pid))
	m.gen.Store(packGen(epoch, step))
	m.healthy.Store(true)
	r.members[id] = m
	// The first replica's generation seeds the fleet's.
	if r.fleetGen.Load() == 0 {
		r.fleetGen.Store(packGen(epoch, step))
	}
	r.rebuildRouteLocked()
	return m, nil
}

// Members snapshots the membership for /healthz and tests.
func (r *Router) Members() []MemberStatus {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]MemberStatus, 0, len(r.members))
	for _, m := range r.members {
		e, s := unpackGen(m.gen.Load())
		out = append(out, MemberStatus{
			ID: m.id, Addr: m.addr, Pid: int(m.pid.Load()),
			Healthy: m.healthy.Load(), Epoch: e, Step: s,
			Inflight: int(m.inflight.Load()),
			Proxied:  m.proxied.Load(), Failures: m.failures.Load(),
		})
	}
	return out
}

// MemberStatus is one replica's state as the router sees it.
type MemberStatus struct {
	ID       string `json:"id"`
	Addr     string `json:"addr"`
	Pid      int    `json:"pid,omitempty"`
	Healthy  bool   `json:"healthy"`
	Epoch    int    `json:"epoch"`
	Step     int    `json:"step"`
	Inflight int    `json:"inflight"`
	Proxied  uint64 `json:"proxied"`
	Failures uint64 `json:"failures"`
}

// Generation returns the fleet-wide serving generation.
func (r *Router) Generation() (epoch, step int) { return unpackGen(r.fleetGen.Load()) }

// Metrics exposes the router's registry.
func (r *Router) Metrics() *Metrics { return r.metrics }

// rebuildRouteLocked recomputes the immutable route set: healthy
// members whose generation matches the fleet's. Callers hold r.mu.
func (r *Router) rebuildRouteLocked() {
	fleetGen := r.fleetGen.Load()
	eligible := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.healthy.Load() && m.gen.Load() == fleetGen {
			eligible = append(eligible, m)
		}
	}
	r.route.Store(newRouteSet(eligible))
}

// rebuildRoute is rebuildRouteLocked for callers not holding r.mu.
func (r *Router) rebuildRoute() {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rebuildRouteLocked()
}

// Shutdown stops the loops and listeners. Proxied requests in flight
// finish (they hold the pause read lock, not resources Shutdown
// tears down); replicas are not contacted — they outlive the router.
func (r *Router) Shutdown(ctx context.Context) error {
	var err error
	r.stopOnce.Do(func() {
		close(r.stopc)
		r.ctlMu.Lock()
		if r.ctlLn != nil {
			r.ctlLn.Close()
		}
		r.ctlMu.Unlock()
		r.httpMu.Lock()
		ln, srv := r.httpLn, r.httpSrv
		r.httpMu.Unlock()
		switch {
		case srv != nil:
			// Graceful: in-flight proxied requests finish, keep-alive
			// connections close, the listener with them.
			if serr := srv.Shutdown(ctx); serr != nil {
				err = serr
			}
		case ln != nil:
			ln.Close()
		}
		done := make(chan struct{})
		go func() {
			r.loopWG.Wait()
			r.ctlWG.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-ctx.Done():
			err = ctx.Err()
		}
	})
	return err
}
