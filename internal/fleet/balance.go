package fleet

import (
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
)

// Request balancing. Two policies share one immutable routeSet:
//
//   - pick2: power-of-two-choices least-loaded. Sampling two random
//     replicas and taking the less loaded one is exponentially better
//     than one random choice and within a whisker of true
//     least-loaded, without a global priority queue — the classic
//     balls-into-bins result, and the right trade on a hot path.
//
//   - sticky: consistent hashing for session-pinned clients. Each
//     member contributes ringVnodes virtual nodes to a hashed ring;
//     a session key routes to the first vnode clockwise. Membership
//     churn remaps only the sessions whose arc moved (~1/N of them),
//     where a modulo scheme would reshuffle everyone.
//
// Both read only the routeSet snapshot, so balancing never takes a
// lock shared with membership bookkeeping.

// ringVnodes is how many ring positions each member occupies; 64
// keeps the per-member load spread within a few percent.
const ringVnodes = 64

type ringEntry struct {
	hash uint64
	m    *member
}

// routeSet is one immutable generation of the routing view.
type routeSet struct {
	members []*member   // route-eligible (healthy, generation-matching)
	ring    []ringEntry // sorted by hash
}

func hash64(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}

func newRouteSet(members []*member) *routeSet {
	rs := &routeSet{members: members}
	rs.ring = make([]ringEntry, 0, len(members)*ringVnodes)
	for _, m := range members {
		for v := 0; v < ringVnodes; v++ {
			rs.ring = append(rs.ring, ringEntry{hash: hash64(m.id + "#" + strconv.Itoa(v)), m: m})
		}
	}
	sort.Slice(rs.ring, func(i, j int) bool { return rs.ring[i].hash < rs.ring[j].hash })
	return rs
}

// pickRng drives pick2's sampling; guarded because rand.Rand is not
// concurrency-safe and the proxy path is concurrent. (The global
// locked source would work too; a private one keeps tests seedable.)
var pickRng = struct {
	sync.Mutex
	*rand.Rand
}{Rand: rand.New(rand.NewSource(1))}

// pick2 returns the less loaded of two sampled members, skipping any
// in `tried` (failover re-picks). nil when no eligible member
// remains.
func (rs *routeSet) pick2(tried map[*member]bool) *member {
	var pool []*member
	if len(tried) == 0 {
		pool = rs.members
	} else {
		pool = make([]*member, 0, len(rs.members))
		for _, m := range rs.members {
			if !tried[m] {
				pool = append(pool, m)
			}
		}
	}
	switch len(pool) {
	case 0:
		return nil
	case 1:
		return pool[0]
	}
	pickRng.Lock()
	i := pickRng.Intn(len(pool))
	j := pickRng.Intn(len(pool) - 1)
	pickRng.Unlock()
	if j >= i {
		j++ // distinct second sample
	}
	a, b := pool[i], pool[j]
	if b.inflight.Load() < a.inflight.Load() {
		return b
	}
	return a
}

// sticky maps a session key onto the ring; failover walks clockwise
// past tried members so a session's retries stay deterministic. nil
// when no eligible member remains.
func (rs *routeSet) sticky(key string, tried map[*member]bool) *member {
	if len(rs.ring) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(rs.ring), func(i int) bool { return rs.ring[i].hash >= h })
	for off := 0; off < len(rs.ring); off++ {
		e := rs.ring[(start+off)%len(rs.ring)]
		if !tried[e.m] {
			return e.m
		}
	}
	return nil
}
