package fleet

import (
	"bufio"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"
)

func dialControl(t *testing.T, addr string) net.Conn {
	t.Helper()
	c, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	c.SetDeadline(time.Now().Add(5 * time.Second))
	return c
}

func readLine(t *testing.T, c net.Conn) map[string]any {
	t.Helper()
	line, err := bufio.NewReader(c).ReadBytes('\n')
	if err != nil && len(line) == 0 {
		t.Fatalf("reading control reply: %v", err)
	}
	var m map[string]any
	_ = json.Unmarshal(line, &m)
	return m
}

// The router's three input surfaces — proxied request bodies, replica
// health replies, and control-plane registrations — each get the same
// contract: any byte string yields either a validated value or a
// typed error, and none of them may panic. Run longer with e.g.:
//
//	go test -fuzz FuzzDecodeRoute ./internal/fleet

func FuzzDecodeRoute(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"features":[1,2,3]}`,
		`{"features":[1],"session":"abc"}`,
		`{"features":[1],"priority":"high"}`,
		`{"features":[1],"priority":"urgent"}`,
		`{"session":42}`,
		`{"features":"nope"}`,
		`[1,2,3]`,
		`{"features`,
		"\x00\xff\xfe",
		`{"features":[1]}{"features":[2]}`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		hints, rerr := decodeRoute(data) // must not panic
		if rerr != nil {
			if rerr.Status < 400 || rerr.Status > 499 {
				t.Fatalf("route error status %d outside 4xx: %+v", rerr.Status, rerr)
			}
			if rerr.Code == "" || rerr.Msg == "" {
				t.Fatalf("route error missing code/message: %+v", rerr)
			}
			return
		}
		switch hints.Priority {
		case "", "low", "normal", "high":
		default:
			t.Fatalf("accepted priority %q", hints.Priority)
		}
	})
}

func FuzzDecodeHealth(f *testing.F) {
	seeds := []string{
		``,
		`{}`,
		`{"status":"ok","epoch":3,"step":300}`,
		`{"status":"ok","epoch":-1,"step":300}`,
		`{"status":"degraded","epoch":3,"step":300,"extra":"tolerated"}`,
		`{"status":""}`,
		`{"status":"ok","epoch":1e99}`,
		`null`,
		`"ok"`,
		"\x00",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		h, err := decodeHealth(data) // must not panic
		if err != nil {
			return
		}
		if h.Status == "" || h.Epoch < 0 || h.Step < 0 {
			t.Fatalf("accepted invalid health %+v", h)
		}
	})
}

func FuzzDecodeJoin(f *testing.F) {
	seeds := []string{
		``,
		`{"type":"join","id":"r1","addr":"127.0.0.1:9","epoch":1,"step":100}`,
		`{"type":"join","id":"","addr":"127.0.0.1:9"}`,
		`{"type":"join","id":"r1"}`,
		`{"type":"assign","epoch":1}`,
		`{"type":"join","id":"r1","addr":"a:1","epoch":-1}`,
		`{"type":"join","id":"r1","addr":"a:1","bogus":true}`,
		`{"type":"join"}{"type":"join"}`,
		`join r1`,
		"\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		msg, err := decodeJoin(data) // must not panic
		if err != nil {
			return
		}
		if msg.Type != "join" || msg.ID == "" || msg.Addr == "" || msg.Epoch < 0 || msg.Step < 0 {
			t.Fatalf("accepted invalid join %+v", msg)
		}
	})
}

// TestControlRejectsGarbage drives a malformed registration through
// the real TCP control plane: the router answers with a typed wire
// error instead of hanging up or crashing, and stays serviceable.
func TestControlRejectsGarbage(t *testing.T) {
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	for _, line := range []string{
		"not json at all\n",
		`{"type":"join"}` + "\n",
		`{"type":"assign","epoch":1}` + "\n",
	} {
		c := dialControl(t, ctlAddr)
		if _, err := c.Write([]byte(line)); err != nil {
			t.Fatal(err)
		}
		reply := readLine(t, c)
		c.Close()
		if code, _ := reply["code"].(string); reply["type"] != "error" || code == "" {
			t.Fatalf("garbage join %q got reply %v, want typed error", line, reply)
		}
	}
	// The router still works afterwards.
	if resp, err := http.Get(baseURL + "/healthz"); err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("router unhealthy after garbage joins: %v", err)
	}
}
