package fleet

import (
	"sync/atomic"

	"candle/internal/trace"
)

// Metrics is the router's bounded-memory registry, on the same trace
// primitives as the replica's (one histogram, a handful of counters —
// nothing grows per request).
type Metrics struct {
	requests       atomic.Uint64 // /predict calls received
	proxied        atomic.Uint64 // answered by a replica (any status)
	failovers      atomic.Uint64 // retries after a failed attempt
	attemptErrors  atomic.Uint64 // individual attempts that failed
	noReplica      atomic.Uint64 // 503: nothing route-eligible
	exhausted      atomic.Uint64 // 502: every attempt failed
	joins          atomic.Uint64
	drains         atomic.Uint64 // members drained by the prober
	recoveries     atomic.Uint64 // members readmitted
	reloads        atomic.Uint64 // committed coordinated rounds
	reloadFailures atomic.Uint64

	// latency is router-observed end-to-end seconds (all failover
	// attempts included), windowable via trace.Window.
	latency *trace.Histogram
}

func newMetrics() *Metrics {
	return &Metrics{
		// 50µs .. ~4s in ×1.5 steps: a proxied request pays at least a
		// local TCP round trip on top of the replica's own latency.
		latency: trace.NewHistogram(trace.ExponentialBounds(50e-6, 1.5, 28)...),
	}
}

// Proxied returns how many requests a replica answered.
func (m *Metrics) Proxied() uint64 { return m.proxied.Load() }

// Failovers returns how many attempts were retried on another
// replica.
func (m *Metrics) Failovers() uint64 { return m.failovers.Load() }

// Latency returns the router-observed latency histogram (seconds).
func (m *Metrics) Latency() *trace.Histogram { return m.latency }

type metricsSnapshot struct {
	Requests       uint64 `json:"requests"`
	Proxied        uint64 `json:"proxied"`
	Failovers      uint64 `json:"failovers"`
	AttemptErrors  uint64 `json:"attempt_errors"`
	NoReplica      uint64 `json:"no_replica"`
	Exhausted      uint64 `json:"exhausted"`
	Joins          uint64 `json:"joins"`
	Drains         uint64 `json:"drains"`
	Recoveries     uint64 `json:"recoveries"`
	Reloads        uint64 `json:"reloads"`
	ReloadFailures uint64 `json:"reload_failures"`

	LatencySeconds latencyJSON `json:"latency_seconds"`
}

type latencyJSON struct {
	trace.HistogramSnapshot
	Mean float64 `json:"mean"`
	P50  float64 `json:"p50"`
	P99  float64 `json:"p99"`
}

func (m *Metrics) snapshot() metricsSnapshot {
	return metricsSnapshot{
		Requests:       m.requests.Load(),
		Proxied:        m.proxied.Load(),
		Failovers:      m.failovers.Load(),
		AttemptErrors:  m.attemptErrors.Load(),
		NoReplica:      m.noReplica.Load(),
		Exhausted:      m.exhausted.Load(),
		Joins:          m.joins.Load(),
		Drains:         m.drains.Load(),
		Recoveries:     m.recoveries.Load(),
		Reloads:        m.reloads.Load(),
		ReloadFailures: m.reloadFailures.Load(),
		LatencySeconds: latencyJSON{
			HistogramSnapshot: m.latency.Snapshot(),
			Mean:              m.latency.Mean(),
			P50:               m.latency.Quantile(0.50),
			P99:               m.latency.Quantile(0.99),
		},
	}
}
