package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Coordinated (two-phase) checkpoint reload. Autonomous per-replica
// reloads would split a fleet across generations whenever replicas
// notice a new checkpoint at different times; the coordinator makes
// the bump atomic instead:
//
//  1. Peek every healthy replica's newest loadable generation
//     (GET /ckpt/latest). The target is the MINIMUM across replicas:
//     a replica whose newest file is damaged (corrupt-skip reports a
//     lower generation) holds the whole fleet back, surfacing on the
//     router's /healthz, rather than leaving that replica behind.
//  2. Stage the target on every replica (POST /reload/stage — builds
//     the model off the serving path). Any replica staging a
//     different generation than the target aborts the round
//     everywhere; nothing was committed, nothing changed.
//  3. Commit everywhere inside the router's pause window: the write
//     half of Router.pause excludes proxied requests for the few
//     milliseconds the commit wave takes, so no client request can
//     land on a mixed-generation fleet. A replica that fails its
//     commit is drained (generation mismatch keeps it out of the
//     route set) instead of poisoning the guarantee.
//
// The protocol's replica half is internal/serve's
// PeekLatest/StageReload/CommitStaged/AbortStaged.

// ErrNothingToReload reports a reload round that found no generation
// newer than the fleet's.
var ErrNothingToReload = errors.New("fleet: no newer checkpoint generation")

// ErrReloadHeldBack reports a round aborted because the replicas
// could not agree on the target generation — typically one replica's
// newest checkpoint is damaged.
var ErrReloadHeldBack = errors.New("fleet: reload held back")

func (r *Router) reloadLoop() {
	defer r.loopWG.Done()
	tick := time.NewTicker(r.cfg.ReloadEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-tick.C:
			if _, _, err := r.Reload(); err != nil && !errors.Is(err, ErrNothingToReload) {
				r.noteReloadErr(err)
			}
		}
	}
}

func (r *Router) noteReloadErr(err error) {
	r.rmu.Lock()
	r.lastReloadErr = err.Error()
	r.rmu.Unlock()
	r.metrics.reloadFailures.Add(1)
}

// Reload runs one coordinated round and returns the fleet generation
// it ended on. ErrNothingToReload means the fleet was already
// current; ErrReloadHeldBack (wrapped with detail) means a replica
// kept the fleet on the old generation — both leave every replica
// serving exactly what it served before.
func (r *Router) Reload() (epoch, step int, err error) {
	r.mu.Lock()
	members := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		if m.healthy.Load() {
			members = append(members, m)
		}
	}
	r.mu.Unlock()
	curE, curS := unpackGen(r.fleetGen.Load())
	if len(members) == 0 {
		return curE, curS, errors.New("fleet: no healthy replicas to reload")
	}

	// Phase 0: peek. The fleet can only advance to a generation every
	// replica can actually load.
	target := int64(-1)
	anySkipped := false
	for _, m := range members {
		e, s, skipped, perr := r.peekOn(m)
		if perr != nil {
			return curE, curS, fmt.Errorf("%w: peeking %s: %v", ErrReloadHeldBack, m.id, perr)
		}
		if skipped > 0 {
			anySkipped = true
		}
		if g := packGen(e, s); target == -1 || g < target {
			target = g
		}
	}
	if target <= r.fleetGen.Load() {
		if anySkipped {
			// Newer files exist somewhere but at least one replica
			// cannot load its copy: the fleet is deliberately held
			// back, and /healthz should say so.
			err := fmt.Errorf("%w: a replica's newest checkpoint is damaged; fleet stays at epoch %d", ErrReloadHeldBack, curE)
			r.noteReloadErr(err)
			return curE, curS, err
		}
		// Every replica peeked clean and nobody skipped anything: the
		// fleet is simply current. A stale held-back error from an
		// earlier round (say, the damaged file has since been deleted)
		// no longer describes reality — clear it so /healthz recovers.
		r.rmu.Lock()
		r.lastReloadErr = ""
		r.rmu.Unlock()
		return curE, curS, ErrNothingToReload
	}
	tE, tS := unpackGen(target)

	// Phase 1: stage everywhere; verify every replica staged exactly
	// the target.
	staged := members[:0:0]
	abort := func() {
		for _, m := range staged {
			_ = r.abortOn(m)
		}
	}
	for _, m := range members {
		e, s, serr := r.stageOn(m)
		if serr != nil {
			abort()
			err := fmt.Errorf("%w: staging on %s: %v", ErrReloadHeldBack, m.id, serr)
			r.noteReloadErr(err)
			return curE, curS, err
		}
		staged = append(staged, m)
		if packGen(e, s) != target {
			abort()
			err := fmt.Errorf("%w: %s staged epoch %d/step %d, fleet target is %d/%d",
				ErrReloadHeldBack, m.id, e, s, tE, tS)
			r.noteReloadErr(err)
			return curE, curS, err
		}
	}

	// Phase 2: commit, atomically from any client's view. The pause
	// write lock waits out in-flight proxied requests and blocks new
	// ones for the duration of the wave.
	r.pause.Lock()
	committed := 0
	for _, m := range members {
		if cerr := r.commitOn(m, tE, tS); cerr != nil {
			// This replica still serves the old generation; leave its
			// recorded generation stale so the route rebuild below
			// drains it. The fleet moves on without it.
			m.failures.Add(1)
			continue
		}
		m.gen.Store(target)
		committed++
	}
	if committed > 0 {
		r.fleetGen.Store(target)
	}
	r.pause.Unlock()
	r.rebuildRoute()

	if committed == 0 {
		err := fmt.Errorf("%w: every commit failed; fleet stays at epoch %d", ErrReloadHeldBack, curE)
		r.noteReloadErr(err)
		return curE, curS, err
	}
	r.rmu.Lock()
	r.reloads++
	r.lastReloadErr = ""
	r.rmu.Unlock()
	r.metrics.reloads.Add(1)
	return tE, tS, nil
}

// ---- per-replica control calls --------------------------------------

func (r *Router) controlJSON(m *member, method, path string, body []byte, out any) error {
	ctx, cancel := contextWithTimeout(r.stopc, r.cfg.ProbeTimeout)
	defer cancel()
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, m.url(path), rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return err
	}
	if resp.StatusCode < 200 || resp.StatusCode >= 300 {
		return fmt.Errorf("fleet: %s %s on %s: status %d: %s",
			method, path, m.id, resp.StatusCode, bytes.TrimSpace(raw))
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return fmt.Errorf("fleet: %s %s on %s: %w", method, path, m.id, err)
		}
	}
	return nil
}

type genReply struct {
	Epoch   int `json:"epoch"`
	Step    int `json:"step"`
	Skipped int `json:"skipped"`
}

func (r *Router) peekOn(m *member) (epoch, step, skipped int, err error) {
	var g genReply
	if err := r.controlJSON(m, http.MethodGet, "/ckpt/latest", nil, &g); err != nil {
		return 0, 0, 0, err
	}
	return g.Epoch, g.Step, g.Skipped, nil
}

func (r *Router) stageOn(m *member) (epoch, step int, err error) {
	var g genReply
	if err := r.controlJSON(m, http.MethodPost, "/reload/stage", nil, &g); err != nil {
		return 0, 0, err
	}
	return g.Epoch, g.Step, nil
}

func (r *Router) commitOn(m *member, epoch, step int) error {
	body, _ := json.Marshal(map[string]int{"epoch": epoch, "step": step})
	return r.controlJSON(m, http.MethodPost, "/reload/commit", body, nil)
}

func (r *Router) abortOn(m *member) error {
	return r.controlJSON(m, http.MethodPost, "/reload/abort", nil, nil)
}

// contextWithTimeout is context.WithTimeout that is also canceled by
// the router's stop channel, so shutdown never waits out a probe.
func contextWithTimeout(stopc <-chan struct{}, d time.Duration) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithTimeout(context.Background(), d)
	go func() {
		select {
		case <-stopc:
			cancel()
		case <-ctx.Done():
		}
	}()
	return ctx, cancel
}
