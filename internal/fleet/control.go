package fleet

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"time"

	"candle/internal/launch"
)

// The fleet control plane: replicas register with the router over the
// same JSON-lines convention internal/launch's rendezvous uses — one
// request line, one reply line, typed errors as stable wire codes
// (launch.ErrCode / launch.CodeErr) — so both control planes speak
// one dialect. Registration is a oneshot: the connection closes after
// the assign and liveness is the health prober's job, not the
// socket's.

// ErrDuplicateReplica is launch's duplicate-registration error under
// its fleet name: a join with the id of a live member. Sharing the
// value keeps the wire code ("duplicate") and errors.Is behavior
// identical across both control planes.
var ErrDuplicateReplica = launch.ErrDuplicateProc

// controlMsg is every control-plane message; Type selects the fields.
type controlMsg struct {
	Type string `json:"type"` // "join", "assign", "error"
	// join fields
	ID   string `json:"id,omitempty"`
	Addr string `json:"addr,omitempty"`
	Pid  int    `json:"pid,omitempty"`
	// generation stamp: the replica's serving generation in a join,
	// the fleet's in an assign.
	Epoch int `json:"epoch,omitempty"`
	Step  int `json:"step,omitempty"`
	// error fields
	Code string `json:"code,omitempty"`
	Msg  string `json:"msg,omitempty"`
}

// maxControlLine bounds one control-plane line; a join is tiny.
const maxControlLine = 1 << 16

// decodeJoin parses one registration line. It is strict (unknown
// fields and trailing garbage rejected) and total: no input panics
// it — the fuzz test holds it to that.
func decodeJoin(line []byte) (controlMsg, error) {
	var msg controlMsg
	if len(bytes.TrimSpace(line)) == 0 {
		return msg, errors.New("fleet: empty control message")
	}
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&msg); err != nil {
		return msg, fmt.Errorf("fleet: decoding control message: %w", err)
	}
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return msg, errors.New("fleet: trailing data after control message")
	}
	if msg.Type != "join" {
		return msg, fmt.Errorf("fleet: unexpected control message type %q", msg.Type)
	}
	if msg.ID == "" || msg.Addr == "" {
		return msg, errors.New("fleet: join needs id and addr")
	}
	if msg.Epoch < 0 || msg.Step < 0 {
		return msg, errors.New("fleet: join generation must be non-negative")
	}
	return msg, nil
}

func writeControl(c net.Conn, msg controlMsg) error {
	b, err := json.Marshal(msg)
	if err != nil {
		return err
	}
	_, err = c.Write(append(b, '\n'))
	return err
}

// ServeControl answers registrations on ln until Shutdown. It is the
// blocking counterpart of launch's rendezvous Serve.
func (r *Router) ServeControl(ln net.Listener) error {
	r.ctlMu.Lock()
	r.ctlLn = ln
	r.ctlMu.Unlock()
	for {
		c, err := ln.Accept()
		if err != nil {
			select {
			case <-r.stopc:
				return nil
			default:
			}
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		r.ctlWG.Add(1)
		go func(c net.Conn) {
			defer r.ctlWG.Done()
			defer c.Close()
			r.handleJoinConn(c)
		}(c)
	}
}

func (r *Router) handleJoinConn(c net.Conn) {
	c.SetDeadline(time.Now().Add(r.cfg.ProbeTimeout))
	rd := bufio.NewReaderSize(c, maxControlLine)
	line, err := rd.ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return
	}
	msg, err := decodeJoin(line)
	if err != nil {
		_ = writeControl(c, controlMsg{Type: "error", Code: launch.ErrCode(err), Msg: err.Error()})
		return
	}
	// A join from a replica the router cannot name its peer address
	// for still carries an explicit addr; trust it (the health prober
	// will find out fast if it lies).
	m, err := r.register(msg.ID, msg.Addr, msg.Pid, msg.Epoch, msg.Step)
	if err != nil {
		_ = writeControl(c, controlMsg{Type: "error", Code: launch.ErrCode(err), Msg: err.Error()})
		return
	}
	epoch, step := unpackGen(r.fleetGen.Load())
	r.metrics.joins.Add(1)
	_ = writeControl(c, controlMsg{Type: "assign", ID: m.id, Epoch: epoch, Step: step})
}

// Assign is the router's registration reply: the fleet generation the
// replica must be serving to receive traffic.
type Assign struct {
	Epoch int
	Step  int
}

// Register is the replica-side client: it dials the router's control
// address (with retry until ctx expires — the router may still be
// coming up, exactly like launch workers racing the rendezvous),
// announces this replica, and returns the fleet generation.
func Register(ctx context.Context, network, ctlAddr, id, serveAddr string, epoch, step int) (*Assign, error) {
	join := controlMsg{Type: "join", ID: id, Addr: serveAddr, Pid: os.Getpid(), Epoch: epoch, Step: step}
	var lastErr error
	backoff := 10 * time.Millisecond
	for {
		if a, err := registerOnce(ctx, network, ctlAddr, join); err == nil {
			return a, nil
		} else if !retryable(err) {
			return nil, err
		} else {
			lastErr = err
		}
		select {
		case <-ctx.Done():
			return nil, fmt.Errorf("fleet: registering %s: %w (last: %v)", id, ctx.Err(), lastErr)
		case <-time.After(backoff):
		}
		if backoff < 500*time.Millisecond {
			backoff *= 2
		}
	}
}

// retryable: transport-level trouble is worth retrying (the router
// may not be listening yet); a rejection the router actually sent —
// or a reply it garbled — is an answer.
func retryable(err error) bool {
	var rej *rejectError
	return !errors.As(err, &rej) && !errors.Is(err, errBadAssign)
}

var errBadAssign = errors.New("fleet: malformed registration reply")

// rejectError marks an error the router replied with (as opposed to
// one reaching it); it unwraps to the typed error launch.CodeErr
// rebuilt, so errors.Is(err, ErrDuplicateReplica) still works.
type rejectError struct{ err error }

func (e *rejectError) Error() string { return e.err.Error() }
func (e *rejectError) Unwrap() error { return e.err }

func registerOnce(ctx context.Context, network, ctlAddr string, join controlMsg) (*Assign, error) {
	d := net.Dialer{}
	c, err := d.DialContext(ctx, network, ctlAddr)
	if err != nil {
		return nil, err
	}
	defer c.Close()
	if dl, ok := ctx.Deadline(); ok {
		c.SetDeadline(dl)
	} else {
		c.SetDeadline(time.Now().Add(5 * time.Second))
	}
	if err := writeControl(c, join); err != nil {
		return nil, err
	}
	line, err := bufio.NewReaderSize(c, maxControlLine).ReadBytes('\n')
	if err != nil && len(line) == 0 {
		return nil, err
	}
	var reply controlMsg
	if err := json.Unmarshal(line, &reply); err != nil {
		return nil, fmt.Errorf("%w: %v", errBadAssign, err)
	}
	switch reply.Type {
	case "assign":
		return &Assign{Epoch: reply.Epoch, Step: reply.Step}, nil
	case "error":
		return nil, &rejectError{err: launch.CodeErr(reply.Code, reply.Msg)}
	default:
		return nil, fmt.Errorf("%w: unexpected type %q", errBadAssign, reply.Type)
	}
}
