package fleet

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"candle/internal/serve"
)

// The router's HTTP face: the /predict proxy with failover, the
// fleet-wide /healthz and /metrics, and the /fleet/reload admin
// trigger. The proxy path holds Router.pause for read end to end —
// including failover retries — which is the client half of the
// atomic-reload guarantee.

// maxProxyBody bounds a proxied request (and any replica reply the
// router reads); same budget as the replica's own limit.
const maxProxyBody = 4 << 20

// routeError is the router's typed 4xx/5xx (mirrors the replica's
// apiError wire shape so clients parse one schema).
type routeError struct {
	Status int    `json:"-"`
	Code   string `json:"code"`
	Msg    string `json:"error"`
}

// routeHints is what the router reads out of a /predict body: enough
// to route (sticky session) and to shed (priority class) — feature
// validation stays the replica's job.
type routeHints struct {
	Session  string `json:"session"`
	Priority string `json:"priority"`
}

// decodeRoute extracts routing hints from a /predict body without
// validating the payload the replicas own. It is total (no input
// panics it — the fuzz test holds it to that) and rejects only what
// can never be served: an empty body, bytes that are not a JSON
// object, a priority no replica would accept.
func decodeRoute(body []byte) (routeHints, *routeError) {
	var h struct {
		Session  string          `json:"session"`
		Priority string          `json:"priority"`
		Features json.RawMessage `json:"features"` // tolerated, not validated
	}
	if len(bytes.TrimSpace(body)) == 0 {
		return routeHints{}, &routeError{Status: http.StatusBadRequest,
			Code: "empty_body", Msg: "request body is empty"}
	}
	if err := json.Unmarshal(body, &h); err != nil {
		return routeHints{}, &routeError{Status: http.StatusBadRequest,
			Code: "bad_json", Msg: fmt.Sprintf("decoding request: %v", err)}
	}
	if _, err := serve.ParsePriority(h.Priority); err != nil {
		return routeHints{}, &routeError{Status: http.StatusBadRequest,
			Code: "bad_priority", Msg: err.Error()}
	}
	return routeHints{Session: h.Session, Priority: h.Priority}, nil
}

// Handler returns the router's HTTP handler:
//
//	POST /predict       proxied to a replica (sticky via X-Session or
//	                    body "session"; least-loaded pick-2 otherwise)
//	GET  /healthz       fleet generation + per-replica state
//	GET  /metrics       router counters and latency histogram
//	POST /fleet/reload  run one coordinated reload round now
func (r *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", r.handlePredict)
	mux.HandleFunc("/healthz", r.handleHealthz)
	mux.HandleFunc("/metrics", r.handleMetrics)
	mux.HandleFunc("/fleet/reload", r.handleReload)
	return mux
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeRouteErr(w, &routeError{Status: http.StatusMethodNotAllowed,
			Code: "method_not_allowed", Msg: "use POST"})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(nil, req.Body, maxProxyBody))
	req.Body.Close()
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			writeRouteErr(w, &routeError{Status: http.StatusRequestEntityTooLarge,
				Code: "body_too_large", Msg: "request body exceeds limit"})
			return
		}
		writeRouteErr(w, &routeError{Status: http.StatusBadRequest,
			Code: "bad_body", Msg: err.Error()})
		return
	}
	hints, rerr := decodeRoute(body)
	if rerr != nil {
		writeRouteErr(w, rerr)
		return
	}
	session := req.Header.Get("X-Session")
	if session == "" {
		session = hints.Session
	}

	start := time.Now()
	r.metrics.requests.Add(1)

	// The read half of the pause gate: held across every attempt so a
	// commit wave can never interleave with this request's failovers.
	r.pause.RLock()
	defer r.pause.RUnlock()

	tried := make(map[*member]bool, r.cfg.MaxAttempts)
	sawMember := false
	for attempt := 0; attempt < r.cfg.MaxAttempts; attempt++ {
		rs := r.route.Load()
		var m *member
		if session != "" {
			m = rs.sticky(session, tried)
		} else {
			m = rs.pick2(tried)
		}
		if m == nil {
			break
		}
		sawMember = true
		tried[m] = true
		if attempt > 0 {
			r.metrics.failovers.Add(1)
		}
		resp, ferr := r.forward(m, req, body)
		if ferr != nil {
			// Transport-level failure: inference is idempotent, retry
			// on another replica. The health prober will catch up with
			// this one.
			m.failures.Add(1)
			r.metrics.attemptErrors.Add(1)
			continue
		}
		if resp.StatusCode == http.StatusBadGateway || resp.StatusCode == http.StatusServiceUnavailable {
			// The replica is itself giving up or draining; treat like
			// a transport failure and go elsewhere.
			resp.Body.Close()
			m.failures.Add(1)
			r.metrics.attemptErrors.Add(1)
			continue
		}
		// Everything else — success or a judgment (4xx, 429) the
		// replica is entitled to make — passes through.
		relayResponse(w, resp, m.id)
		m.proxied.Add(1)
		r.metrics.proxied.Add(1)
		r.metrics.latency.Observe(time.Since(start).Seconds())
		return
	}

	if !sawMember {
		w.Header().Set("Retry-After", "1")
		writeRouteErr(w, &routeError{Status: http.StatusServiceUnavailable,
			Code: "no_replicas", Msg: "no route-eligible replica (fleet empty, draining, or mid-recovery)"})
		r.metrics.noReplica.Add(1)
		return
	}
	writeRouteErr(w, &routeError{Status: http.StatusBadGateway,
		Code: "replicas_exhausted",
		Msg:  fmt.Sprintf("request failed on %d replica(s)", len(tried))})
	r.metrics.exhausted.Add(1)
}

// forward relays one attempt to one member.
func (r *Router) forward(m *member, orig *http.Request, body []byte) (*http.Response, error) {
	m.inflight.Add(1)
	defer m.inflight.Add(-1)
	req, err := http.NewRequestWithContext(orig.Context(), http.MethodPost,
		m.url("/predict"), bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if pri := orig.Header.Get("X-Priority"); pri != "" {
		req.Header.Set("X-Priority", pri)
	}
	return r.cfg.Client.Do(req)
}

// relayResponse copies a replica reply to the client, stamping which
// replica served it.
func relayResponse(w http.ResponseWriter, resp *http.Response, memberID string) {
	defer resp.Body.Close()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set("X-Served-By", memberID)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, io.LimitReader(resp.Body, maxProxyBody))
}

// fleetHealth is the wire shape of the router's /healthz.
type fleetHealth struct {
	// Status is "ok"; "degraded" when a replica is drained, stale, or
	// the last reload round was held back; "no_replicas" when nothing
	// is route-eligible.
	Status          string         `json:"status"`
	Epoch           int            `json:"epoch"`
	Step            int            `json:"step"`
	Replicas        int            `json:"replicas"`
	Eligible        int            `json:"eligible"`
	Reloads         int            `json:"reloads"`
	LastReloadError string         `json:"last_reload_error,omitempty"`
	Members         []MemberStatus `json:"members"`
}

func (r *Router) handleHealthz(w http.ResponseWriter, req *http.Request) {
	members := r.Members()
	eligible := len(r.route.Load().members)
	epoch, step := r.Generation()
	r.rmu.Lock()
	reloads, lastErr := r.reloads, r.lastReloadErr
	r.rmu.Unlock()
	h := fleetHealth{
		Status: "ok", Epoch: epoch, Step: step,
		Replicas: len(members), Eligible: eligible,
		Reloads: reloads, LastReloadError: lastErr,
		Members: members,
	}
	if eligible < len(members) || lastErr != "" {
		h.Status = "degraded"
	}
	if eligible == 0 {
		h.Status = "no_replicas"
	}
	writeJSON(w, http.StatusOK, h)
}

func (r *Router) handleMetrics(w http.ResponseWriter, req *http.Request) {
	writeJSON(w, http.StatusOK, r.metrics.snapshot())
}

func (r *Router) handleReload(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeRouteErr(w, &routeError{Status: http.StatusMethodNotAllowed,
			Code: "method_not_allowed", Msg: "use POST"})
		return
	}
	epoch, step, err := r.Reload()
	switch {
	case err == nil:
		writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "step": step, "reloaded": true})
	case errors.Is(err, ErrNothingToReload):
		writeJSON(w, http.StatusOK, map[string]any{"epoch": epoch, "step": step, "reloaded": false})
	case errors.Is(err, ErrReloadHeldBack):
		writeRouteErr(w, &routeError{Status: http.StatusConflict,
			Code: "held_back", Msg: err.Error()})
	default:
		writeRouteErr(w, &routeError{Status: http.StatusInternalServerError,
			Code: "reload_failed", Msg: err.Error()})
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeRouteErr(w http.ResponseWriter, e *routeError) {
	writeJSON(w, e.Status, e)
}

// Serve answers HTTP on ln until Shutdown; the blocking entry point
// cmd/candle-fleet uses. Unlike serve.Server, the router needs no
// drain choreography — proxied requests hold nothing but the pause
// read lock.
func (r *Router) Serve(ln net.Listener) error {
	srv := &http.Server{Handler: r.Handler()}
	r.httpMu.Lock()
	r.httpLn, r.httpSrv = ln, srv
	r.httpMu.Unlock()
	err := srv.Serve(ln)
	if errors.Is(err, http.ErrServerClosed) || errors.Is(err, net.ErrClosed) {
		return nil
	}
	return err
}
