package fleet

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"context"
	"encoding/json"

	"candle/internal/nn"
	"candle/internal/serve"
)

// The fleet benchmark: an open-loop generator (Poisson-shaped fixed
// arrival rate — requests arrive whether or not earlier ones have
// finished, unlike the closed loop in internal/serve's bench) against
// 1, 2, and 4 real serve.Server replicas, plus a kill-a-replica-
// under-load run that must finish with zero failed admitted requests.
//
// The container is single-core, so replica *compute* cannot actually
// run in parallel here. Each replica instead carries a fixed
// ServiceDelay per batch — a sleep standing in for the service time
// of a dedicated machine. Sleeps overlap across replicas the way real
// machines would, so fleet scaling shows up honestly in throughput
// and tail latency while the router's own CPU cost stays real.

const (
	fbServiceDelay = 16 * time.Millisecond // per-batch service time
	fbMaxBatch     = 4                     // rows per batch
	// One replica therefore serves ~fbMaxBatch/fbServiceDelay =
	// 250 rows/s; the 800/s offered load saturates one replica, still
	// saturates two, and fits in four — each doubling shows up.
	fbRate  = 800.0
	fbTotal = 3200
)

func startBenchReplica(t *testing.T, id, dir string) *realReplica {
	t.Helper()
	s, err := serve.New(serve.Config{
		Benchmark:    lcBench,
		Dir:          dir,
		Factory:      lcFactory,
		Loss:         nn.CategoricalCrossEntropy{},
		InputDim:     lcDim,
		MaxBatch:     fbMaxBatch,
		MaxWait:      time.Millisecond,
		Replicas:     1,
		QueueDepth:   64,
		ReloadEvery:  -1,
		ServiceDelay: fbServiceDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(s.Handler())
	rr := &realReplica{id: id, s: s, srv: srv}
	t.Cleanup(func() {
		srv.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return rr
}

type openLoopResult struct {
	ok, shed, failed int
	elapsed          time.Duration
	latencies        []float64 // seconds, successful requests only
}

func (r *openLoopResult) achievedRPS() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.ok) / r.elapsed.Seconds()
}

func (r *openLoopResult) quantile(q float64) float64 {
	if len(r.latencies) == 0 {
		return 0
	}
	sorted := append([]float64(nil), r.latencies...)
	sort.Float64s(sorted)
	return sorted[int(q*float64(len(sorted)-1))]
}

// runOpenLoop fires total requests at the router at a fixed arrival
// rate, independent of completions. onArrival (optional) runs inline
// at each dispatch index — the kill run uses it to murder a replica
// partway through.
func runOpenLoop(t *testing.T, baseURL string, rate float64, total int, onArrival func(i int)) *openLoopResult {
	t.Helper()
	client := &http.Client{
		Timeout: 30 * time.Second,
		Transport: &http.Transport{
			MaxIdleConns:        512,
			MaxIdleConnsPerHost: 512,
		},
	}
	defer client.CloseIdleConnections()

	res := &openLoopResult{}
	var mu sync.Mutex
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / rate)
	start := time.Now()
	for i := 0; i < total; i++ {
		// Pace against absolute targets so per-iteration jitter does
		// not accumulate into a slower offered rate.
		if wait := start.Add(time.Duration(i) * interval).Sub(time.Now()); wait > 0 {
			time.Sleep(wait)
		}
		if onArrival != nil {
			onArrival(i)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			t0 := time.Now()
			resp, err := client.Post(baseURL+"/predict", "application/json",
				strings.NewReader(lcBody))
			lat := time.Since(t0).Seconds()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				res.failed++
				return
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			switch {
			case resp.StatusCode == http.StatusOK:
				res.ok++
				res.latencies = append(res.latencies, lat)
			case resp.StatusCode == http.StatusTooManyRequests:
				res.shed++ // not admitted: shed load, never a failure
			default:
				res.failed++
			}
		}()
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	return res
}

// TestWriteFleetBench regenerates BENCH_fleet.json when
// BENCH_FLEET_OUT names the destination (see `make bench-fleet`).
func TestWriteFleetBench(t *testing.T) {
	out := os.Getenv("BENCH_FLEET_OUT")
	if out == "" {
		t.Skip("set BENCH_FLEET_OUT to write the benchmark file")
	}

	dir := t.TempDir()
	lcWriteCkpt(t, dir, 1, 42)

	scales := map[string]any{}
	var tput [3]float64
	for i, n := range []int{1, 2, 4} {
		_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
		for j := 0; j < n; j++ {
			registerReal(t, ctlAddr, startBenchReplica(t, fmt.Sprintf("r%d", j), dir))
		}
		r := runOpenLoop(t, baseURL, fbRate, fbTotal, nil)
		if r.failed != 0 {
			t.Errorf("%d replicas: %d requests failed", n, r.failed)
		}
		tput[i] = r.achievedRPS()
		scales[fmt.Sprintf("replicas_%d", n)] = map[string]any{
			"replicas":        n,
			"offered_rps":     fbRate,
			"throughput_rps":  math.Round(r.achievedRPS()),
			"served":          r.ok,
			"shed_429":        r.shed,
			"failed":          r.failed,
			"latency_p50_ms":  round1(r.quantile(0.50) * 1e3),
			"latency_p99_ms":  round1(r.quantile(0.99) * 1e3),
			"latency_mean_ms": round1(mean(r.latencies) * 1e3),
		}
		fmt.Printf("replicas=%d: %.0f req/s served (shed %d, failed %d), p50 %.1fms, p99 %.1fms\n",
			n, r.achievedRPS(), r.shed, r.failed, r.quantile(0.50)*1e3, r.quantile(0.99)*1e3)
	}
	if tput[1] < 1.3*tput[0] {
		t.Errorf("2-replica throughput %.0f is under 1.3x 1-replica %.0f", tput[1], tput[0])
	}

	// Kill run: two replicas, offered load one survivor can carry,
	// one replica dies abruptly mid-run. Shedding (429) is allowed;
	// a failed admitted request (any 5xx or transport error) is not.
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	registerReal(t, ctlAddr, startBenchReplica(t, "k0", dir))
	victim := startBenchReplica(t, "k1", dir)
	registerReal(t, ctlAddr, victim)
	const killRate, killTotal = 200.0, 1600
	var killOnce sync.Once
	kr := runOpenLoop(t, baseURL, killRate, killTotal, func(i int) {
		if i == killTotal*2/5 {
			killOnce.Do(func() {
				victim.srv.CloseClientConnections()
				victim.srv.Close()
			})
		}
	})
	if kr.failed != 0 {
		t.Errorf("kill run: %d admitted requests failed, want 0", kr.failed)
	}
	fmt.Printf("kill run: %.0f req/s served (shed %d, failed %d), p99 %.1fms\n",
		kr.achievedRPS(), kr.shed, kr.failed, kr.quantile(0.99)*1e3)

	doc := map[string]any{
		"description": "Open-loop load test of the replicated serving fleet: a fixed-rate generator fires requests at the candle-fleet router independent of completions, fronting 1, 2, and 4 real serve.Server replicas registered over the JSON-lines control plane. The container is single-core, so replica compute cannot physically parallelize; each replica instead sleeps a fixed ServiceDelay per batch, standing in for the service time of a dedicated machine — the sleeps overlap across replicas exactly as real machines would, so throughput and tail-latency scaling are honest while the router's CPU cost (routing, failover bookkeeping, proxying) stays real. The 800/s offered load saturates one replica (~250 rows/s capacity at MaxBatch=4, 16ms/batch) and still saturates two, so each doubling of the fleet shows up directly: goodput roughly doubles from 1 to 2 replicas, and at 4 the fleet absorbs the full offered rate with p99 collapsing from queue-bound to service-bound. The kill run offers 200/s to two replicas and severs one replica's connections mid-run: the router retries in-flight attempts on the survivor and drains the corpse, so admitted requests never fail — shed load (429) is permitted, a 5xx is not, and the run asserts failed=0.",
		"environment": map[string]any{
			"cpu":               "single-core container",
			"gomaxprocs":        runtime.GOMAXPROCS(0),
			"go":                runtime.Version(),
			"model":             "dense-8/relu/dense-3/softmax toy head (service time dominated by ServiceDelay)",
			"service_delay_ms":  float64(fbServiceDelay) / 1e6,
			"replica_max_batch": fbMaxBatch,
			"transport":         "HTTP through the router (failover and proxy cost included)",
		},
		"scales": scales,
		"kill_run": map[string]any{
			"replicas_start": 2,
			"replicas_end":   1,
			"offered_rps":    killRate,
			"throughput_rps": math.Round(kr.achievedRPS()),
			"served":         kr.ok,
			"shed_429":       kr.shed,
			"failed":         kr.failed,
			"latency_p50_ms": round1(kr.quantile(0.50) * 1e3),
			"latency_p99_ms": round1(kr.quantile(0.99) * 1e3),
		},
		"scaling_2_over_1": round3(tput[1] / tput[0]),
		"scaling_4_over_1": round3(tput[2] / tput[0]),
		"regenerate":       "make bench-fleet",
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	fmt.Printf("scaling 2x=%.2f 4x=%.2f -> %s\n", tput[1]/tput[0], tput[2]/tput[0], out)
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func round1(v float64) float64 { return math.Round(v*10) / 10 }
func round3(v float64) float64 { return math.Round(v*1e3) / 1e3 }
