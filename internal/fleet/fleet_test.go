package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// ---- test scaffolding ----------------------------------------------
//
// fakeReplica speaks exactly the replica surface the router consumes
// (/predict, /healthz, /ckpt/latest, /reload/*) with scriptable
// state, so routing/health/reload logic is testable without model
// weights; lifecycle_test.go re-runs the critical paths against real
// serve.Servers.

type fakeReplica struct {
	id  string
	srv *httptest.Server

	mu          sync.Mutex
	epoch, step int    // serving generation
	latestE     int    // newest loadable generation on "disk"
	latestS     int
	skipped     int  // damaged-newer files /ckpt/latest reports
	stagedE     int  // 0 = nothing staged
	stagedS     int
	healthDown  bool // healthz answers 500
	predictCode int  // nonzero: /predict answers this status

	served atomic.Int64
}

func newFakeReplica(t *testing.T, id string, epoch, step int) *fakeReplica {
	t.Helper()
	f := &fakeReplica{id: id, epoch: epoch, step: step, latestE: epoch, latestS: step}
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", f.handlePredict)
	mux.HandleFunc("/healthz", f.handleHealthz)
	mux.HandleFunc("/ckpt/latest", f.handleLatest)
	mux.HandleFunc("/reload/stage", f.handleStage)
	mux.HandleFunc("/reload/commit", f.handleCommit)
	mux.HandleFunc("/reload/abort", f.handleAbort)
	f.srv = httptest.NewServer(mux)
	t.Cleanup(f.srv.Close)
	return f
}

func (f *fakeReplica) addr() string { return f.srv.Listener.Addr().String() }

func (f *fakeReplica) set(mutate func(*fakeReplica)) {
	f.mu.Lock()
	defer f.mu.Unlock()
	mutate(f)
}

func (f *fakeReplica) handlePredict(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	code, epoch := f.predictCode, f.epoch
	f.mu.Unlock()
	f.served.Add(1)
	if code != 0 {
		w.WriteHeader(code)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"prediction": []float64{0.5}, "epoch": epoch})
}

func (f *fakeReplica) handleHealthz(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.healthDown {
		w.WriteHeader(http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": f.epoch, "step": f.step, "pid": 4242})
}

func (f *fakeReplica) handleLatest(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"epoch": f.latestE, "step": f.latestS, "skipped": f.skipped})
}

func (f *fakeReplica) handleStage(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stagedE, f.stagedS = f.latestE, f.latestS
	writeJSON(w, http.StatusOK, map[string]any{"epoch": f.stagedE, "step": f.stagedS})
}

func (f *fakeReplica) handleCommit(w http.ResponseWriter, r *http.Request) {
	var gen struct{ Epoch, Step int }
	body, _ := io.ReadAll(r.Body)
	_ = json.Unmarshal(body, &gen)
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stagedE == 0 || f.stagedE != gen.Epoch || f.stagedS != gen.Step {
		writeJSON(w, http.StatusConflict, map[string]any{"code": "stage_conflict"})
		return
	}
	f.epoch, f.step = f.stagedE, f.stagedS
	f.stagedE, f.stagedS = 0, 0
	writeJSON(w, http.StatusOK, map[string]any{"epoch": f.epoch, "step": f.step})
}

func (f *fakeReplica) handleAbort(w http.ResponseWriter, r *http.Request) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.stagedE, f.stagedS = 0, 0
	w.WriteHeader(http.StatusNoContent)
}

func testRouterConfig() Config {
	return Config{
		HealthEvery:  20 * time.Millisecond,
		DeadAfter:    2,
		ReloadEvery:  -1, // reload only on demand in tests
		MaxAttempts:  3,
		ProbeTimeout: time.Second,
	}
}

// newTestRouter starts a router plus its control and HTTP listeners.
func newTestRouter(t *testing.T, cfg Config) (r *Router, ctlAddr, baseURL string) {
	t.Helper()
	r = NewRouter(cfg)
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.ServeControl(ctlLn) }()
	httpLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.Serve(httpLn) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
	})
	return r, ctlLn.Addr().String(), "http://" + httpLn.Addr().String()
}

func mustRegister(t *testing.T, ctlAddr string, f *fakeReplica) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	f.mu.Lock()
	epoch, step := f.epoch, f.step
	f.mu.Unlock()
	if _, err := Register(ctx, "tcp", ctlAddr, f.id, f.addr(), epoch, step); err != nil {
		t.Fatalf("registering %s: %v", f.id, err)
	}
}

func postPredict(t *testing.T, url, body string, hdr map[string]string) (*http.Response, map[string]any) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/predict", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var decoded map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&decoded)
	return resp, decoded
}

func getHealth(t *testing.T, baseURL string) map[string]any {
	t.Helper()
	resp, err := http.Get(baseURL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	_ = json.NewDecoder(resp.Body).Decode(&h)
	return h
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// ---- registration + routing ----------------------------------------

func TestRegisterAndBalance(t *testing.T) {
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	b := newFakeReplica(t, "b", 1, 100)
	mustRegister(t, ctlAddr, a)
	mustRegister(t, ctlAddr, b)

	const n = 200
	for i := 0; i < n; i++ {
		resp, decoded := postPredict(t, baseURL, `{"features":[1]}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%v)", i, resp.StatusCode, decoded)
		}
		if resp.Header.Get("X-Served-By") == "" {
			t.Fatal("response missing X-Served-By")
		}
	}
	sa, sb := a.served.Load(), b.served.Load()
	if sa+sb != n {
		t.Fatalf("replicas served %d+%d, want %d", sa, sb, n)
	}
	// pick2 on equal load splits roughly evenly; 20/80 would mean the
	// sampler is broken, not unlucky.
	if sa < n/5 || sb < n/5 {
		t.Fatalf("lopsided balance: a=%d b=%d", sa, sb)
	}
}

func TestStickySessions(t *testing.T) {
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	replicas := []*fakeReplica{
		newFakeReplica(t, "a", 1, 100),
		newFakeReplica(t, "b", 1, 100),
		newFakeReplica(t, "c", 1, 100),
	}
	for _, f := range replicas {
		mustRegister(t, ctlAddr, f)
	}

	// One session always lands on one replica.
	servedBy := func(session string) string {
		resp, decoded := postPredict(t, baseURL, `{"features":[1]}`, map[string]string{"X-Session": session})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("session %s: status %d (%v)", session, resp.StatusCode, decoded)
		}
		return resp.Header.Get("X-Served-By")
	}
	hits := map[string]bool{}
	for s := 0; s < 16; s++ {
		session := fmt.Sprintf("session-%d", s)
		first := servedBy(session)
		hits[first] = true
		for i := 0; i < 5; i++ {
			if got := servedBy(session); got != first {
				t.Fatalf("session %s moved from %s to %s with stable membership", session, first, got)
			}
		}
	}
	// 16 sessions over 3 replicas should touch more than one replica.
	if len(hits) < 2 {
		t.Fatalf("all sessions hashed to one replica: %v", hits)
	}

	// The body "session" field works when the header is absent.
	resp, _ := postPredict(t, baseURL, `{"features":[1],"session":"via-body"}`, nil)
	first := resp.Header.Get("X-Served-By")
	for i := 0; i < 5; i++ {
		resp, _ = postPredict(t, baseURL, `{"features":[1],"session":"via-body"}`, nil)
		if got := resp.Header.Get("X-Served-By"); got != first {
			t.Fatalf("body session moved from %s to %s", first, got)
		}
	}
}

func TestDuplicateJoinRejected(t *testing.T) {
	_, ctlAddr, _ := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	mustRegister(t, ctlAddr, a)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_, err := Register(ctx, "tcp", ctlAddr, "a", a.addr(), 1, 100)
	if !errors.Is(err, ErrDuplicateReplica) {
		t.Fatalf("duplicate join: got %v, want ErrDuplicateReplica", err)
	}
}

func TestNoReplicas503(t *testing.T) {
	_, _, baseURL := newTestRouter(t, testRouterConfig())
	resp, decoded := postPredict(t, baseURL, `{"features":[1]}`, nil)
	if resp.StatusCode != http.StatusServiceUnavailable || decoded["code"] != "no_replicas" {
		t.Fatalf("empty fleet: %d %v", resp.StatusCode, decoded)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("503 missing Retry-After")
	}
}

func TestRouterRejectsBadRequests(t *testing.T) {
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	mustRegister(t, ctlAddr, newFakeReplica(t, "a", 1, 100))

	cases := []struct {
		name, body string
		status     int
		code       string
	}{
		{"empty", "", http.StatusBadRequest, "empty_body"},
		{"garbage", "{not json", http.StatusBadRequest, "bad_json"},
		{"bad priority", `{"features":[1],"priority":"urgent"}`, http.StatusBadRequest, "bad_priority"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, decoded := postPredict(t, baseURL, tc.body, nil)
			if resp.StatusCode != tc.status || decoded["code"] != tc.code {
				t.Fatalf("%s: %d %v, want %d %q", tc.name, resp.StatusCode, decoded, tc.status, tc.code)
			}
		})
	}
}

// ---- failover + drain-around ---------------------------------------

func TestFailoverOnDeadReplica(t *testing.T) {
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	b := newFakeReplica(t, "b", 1, 100)
	mustRegister(t, ctlAddr, a)
	mustRegister(t, ctlAddr, b)

	// Replica a dies without deregistering: its socket goes dark.
	a.srv.Close()

	// Every request still succeeds — attempts on a fail over to b.
	for i := 0; i < 40; i++ {
		resp, decoded := postPredict(t, baseURL, `{"features":[1]}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d (%v)", i, resp.StatusCode, decoded)
		}
		if got := resp.Header.Get("X-Served-By"); got != "b" {
			t.Fatalf("request %d served by %q, want b", i, got)
		}
	}

	// The prober drains a; after that, no more failovers are needed.
	waitFor(t, "replica a drained", func() bool {
		for _, m := range r.Members() {
			if m.ID == "a" {
				return !m.Healthy
			}
		}
		return false
	})
	before := r.metrics.failovers.Load()
	for i := 0; i < 20; i++ {
		resp, _ := postPredict(t, baseURL, `{"features":[1]}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-drain request %d: status %d", i, resp.StatusCode)
		}
	}
	if after := r.metrics.failovers.Load(); after != before {
		t.Fatalf("drained replica still being tried: failovers %d -> %d", before, after)
	}
	if h := getHealth(t, baseURL); h["status"] != "degraded" {
		t.Fatalf("healthz status %v with a drained member, want degraded", h["status"])
	}
}

func TestDrainAndRecovery(t *testing.T) {
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	b := newFakeReplica(t, "b", 1, 100)
	mustRegister(t, ctlAddr, a)
	mustRegister(t, ctlAddr, b)

	memberHealthy := func(id string) bool {
		for _, m := range r.Members() {
			if m.ID == id {
				return m.Healthy
			}
		}
		return false
	}

	// a degrades (healthz 500s), the prober drains it.
	a.set(func(f *fakeReplica) { f.healthDown = true })
	waitFor(t, "a drained", func() bool { return !memberHealthy("a") })
	a.served.Store(0)
	for i := 0; i < 20; i++ {
		if resp, _ := postPredict(t, baseURL, `{"features":[1]}`, nil); resp.StatusCode != http.StatusOK {
			t.Fatalf("request during drain: %d", resp.StatusCode)
		}
	}
	if got := a.served.Load(); got != 0 {
		t.Fatalf("drained replica served %d requests", got)
	}

	// a recovers; the prober readmits it and traffic returns.
	a.set(func(f *fakeReplica) { f.healthDown = false })
	waitFor(t, "a readmitted", func() bool { return memberHealthy("a") })
	waitFor(t, "traffic back on a", func() bool {
		resp, _ := postPredict(t, baseURL, `{"features":[1]}`, nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request after recovery: %d", resp.StatusCode)
		}
		return a.served.Load() > 0
	})
	if h := getHealth(t, baseURL); h["status"] != "ok" {
		t.Fatalf("healthz status %v after recovery, want ok", h["status"])
	}
	// A restarted (dead) replica may re-register under its old id.
	a.set(func(f *fakeReplica) { f.healthDown = true })
	waitFor(t, "a drained again", func() bool { return !memberHealthy("a") })
	mustRegister(t, ctlAddr, a) // would fail were the slot still held
}

// ---- coordinated reload over fakes ---------------------------------

func TestCoordinatedReloadFakes(t *testing.T) {
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	b := newFakeReplica(t, "b", 1, 100)
	mustRegister(t, ctlAddr, a)
	mustRegister(t, ctlAddr, b)

	// Nothing newer: no-op.
	if _, _, err := r.Reload(); !errors.Is(err, ErrNothingToReload) {
		t.Fatalf("reload with nothing new: %v", err)
	}

	// A new generation lands on both replicas' storage.
	a.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })
	b.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })
	epoch, step, err := r.Reload()
	if err != nil || epoch != 2 || step != 200 {
		t.Fatalf("Reload = (%d, %d, %v), want (2, 200, nil)", epoch, step, err)
	}
	if e, s := r.Generation(); e != 2 || s != 200 {
		t.Fatalf("fleet generation (%d, %d), want (2, 200)", e, s)
	}
	for _, f := range []*fakeReplica{a, b} {
		f.mu.Lock()
		fe := f.epoch
		f.mu.Unlock()
		if fe != 2 {
			t.Fatalf("replica %s still at epoch %d", f.id, fe)
		}
	}
	if h := getHealth(t, baseURL); h["epoch"].(float64) != 2 {
		t.Fatalf("healthz epoch %v, want 2", h["epoch"])
	}
}

func TestReloadHeldBackByCorruptReplica(t *testing.T) {
	r, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 1, 100)
	b := newFakeReplica(t, "b", 1, 100)
	mustRegister(t, ctlAddr, a)
	mustRegister(t, ctlAddr, b)

	// Epoch 2 lands everywhere, but a's copy is damaged: its newest
	// loadable stays 1 and it reports one skipped file.
	a.set(func(f *fakeReplica) { f.skipped = 1 })
	b.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })

	_, _, err := r.Reload()
	if !errors.Is(err, ErrReloadHeldBack) {
		t.Fatalf("reload with a corrupt replica: %v, want ErrReloadHeldBack", err)
	}
	if e, _ := r.Generation(); e != 1 {
		t.Fatalf("fleet advanced to epoch %d past a replica that cannot load it", e)
	}
	for _, f := range []*fakeReplica{a, b} {
		f.mu.Lock()
		fe := f.epoch
		f.mu.Unlock()
		if fe != 1 {
			t.Fatalf("replica %s moved to epoch %d during a held-back round", f.id, fe)
		}
	}
	h := getHealth(t, baseURL)
	if h["status"] != "degraded" || h["last_reload_error"] == "" {
		t.Fatalf("healthz = %v, want degraded with a reload error", h)
	}

	// The damaged files are deleted instead of repaired: the next
	// round finds nothing to do — and a clean full peek must clear
	// the stale held-back error rather than leave /healthz degraded
	// forever.
	a.set(func(f *fakeReplica) { f.skipped = 0 })
	b.set(func(f *fakeReplica) { f.latestE, f.latestS = 1, 100 })
	if _, _, err := r.Reload(); !errors.Is(err, ErrNothingToReload) {
		t.Fatalf("reload after deleting damaged files: %v, want ErrNothingToReload", err)
	}
	h = getHealth(t, baseURL)
	if h["status"] != "ok" || h["last_reload_error"] != nil {
		t.Fatalf("healthz after clean peek = %v, want ok with no reload error", h)
	}

	// The damage heals for real: the next round advances and clears
	// the error.
	a.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })
	b.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })
	if _, _, err := r.Reload(); err != nil {
		t.Fatal(err)
	}
	h = getHealth(t, baseURL)
	if h["status"] != "ok" || h["epoch"].(float64) != 2 {
		t.Fatalf("healthz after recovery = %v", h)
	}
}

// TestStaleJoinerCaughtUp: a replica joining behind the fleet
// generation gets no traffic until the router walks it forward.
func TestStaleJoinerCaughtUp(t *testing.T) {
	_, ctlAddr, baseURL := newTestRouter(t, testRouterConfig())
	a := newFakeReplica(t, "a", 2, 200)
	mustRegister(t, ctlAddr, a)

	// b joins at epoch 1, but its storage holds epoch 2.
	b := newFakeReplica(t, "b", 1, 100)
	b.set(func(f *fakeReplica) { f.latestE, f.latestS = 2, 200 })
	mustRegister(t, ctlAddr, b)

	// Until caught up, traffic goes only to a.
	if resp, _ := postPredict(t, baseURL, `{"features":[1]}`, nil); resp.Header.Get("X-Served-By") != "a" {
		t.Fatal("stale joiner received traffic before catching up")
	}
	// The prober catches b up via stage/commit.
	waitFor(t, "b caught up", func() bool {
		b.mu.Lock()
		defer b.mu.Unlock()
		return b.epoch == 2
	})
	waitFor(t, "b in rotation", func() bool {
		resp, _ := postPredict(t, baseURL, `{"features":[1]}`, nil)
		return resp.Header.Get("X-Served-By") == "b"
	})
}
