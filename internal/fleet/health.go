package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Health probing and drain-around. The router trusts nothing it
// cannot observe: every HealthEvery it probes each member's /healthz,
// and DeadAfter consecutive failures drain the member from the route
// set — in-flight requests fail over, new ones never see it. A
// replica that answers again is readmitted, but only once its
// generation matches the fleet's (a restarted replica may come back
// on older weights; catchUp walks it forward through the same
// stage/commit protocol a coordinated reload uses).

// replicaHealth is the slice of a replica's /healthz the router needs.
type replicaHealth struct {
	Status string `json:"status"`
	Epoch  int    `json:"epoch"`
	Step   int    `json:"step"`
	Pid    int    `json:"pid"`
}

// decodeHealth parses a replica /healthz body. Lenient about fields
// it does not use (the replica reports plenty), strict about the ones
// it does, and total: no input panics it.
func decodeHealth(body []byte) (replicaHealth, error) {
	var h replicaHealth
	if err := json.Unmarshal(body, &h); err != nil {
		return h, fmt.Errorf("fleet: decoding healthz: %w", err)
	}
	if h.Status == "" {
		return h, errors.New("fleet: healthz missing status")
	}
	if h.Epoch < 0 || h.Step < 0 {
		return h, errors.New("fleet: healthz generation must be non-negative")
	}
	return h, nil
}

func (r *Router) healthLoop() {
	defer r.loopWG.Done()
	tick := time.NewTicker(r.cfg.HealthEvery)
	defer tick.Stop()
	for {
		select {
		case <-r.stopc:
			return
		case <-tick.C:
			r.probeAll()
		}
	}
}

// probeAll probes every member once and rebuilds the route set if any
// member's routing eligibility changed.
func (r *Router) probeAll() {
	r.mu.Lock()
	members := make([]*member, 0, len(r.members))
	for _, m := range r.members {
		members = append(members, m)
	}
	r.mu.Unlock()

	changed := false
	for _, m := range members {
		if r.probe(m) {
			changed = true
		}
	}
	if changed {
		r.rebuildRoute()
	}
}

// probe checks one member, returning whether its routing eligibility
// (health or generation) changed.
func (r *Router) probe(m *member) (changed bool) {
	h, err := r.fetchHealth(m)
	if err != nil {
		fails := m.fails.Add(1)
		if int(fails) >= r.cfg.DeadAfter && m.healthy.Load() {
			m.healthy.Store(false)
			r.metrics.drains.Add(1)
			return true
		}
		return false
	}
	m.fails.Store(0)
	// "draining" means the replica is shutting down on purpose: treat
	// it like a death, without waiting for the port to go dark.
	if h.Status == "draining" {
		if m.healthy.Load() {
			m.healthy.Store(false)
			r.metrics.drains.Add(1)
			return true
		}
		return false
	}
	if h.Pid != 0 {
		m.pid.Store(int64(h.Pid))
	}
	oldGen := m.gen.Load()
	newGen := packGen(h.Epoch, h.Step)
	m.gen.Store(newGen)
	if !m.healthy.Load() {
		m.healthy.Store(true)
		r.metrics.recoveries.Add(1)
		changed = true
	}
	if newGen != oldGen {
		changed = true
	}
	// A healthy member behind the fleet generation is useless for
	// routing; try to walk it forward right here (shared checkpoint
	// storage makes this a local stage/commit, no fleet-wide pause
	// needed — the member is not route-eligible yet).
	if fleetGen := r.fleetGen.Load(); newGen != fleetGen && newGen < fleetGen {
		if r.catchUp(m, fleetGen) {
			changed = true
		}
	}
	return changed
}

func (r *Router) fetchHealth(m *member) (replicaHealth, error) {
	ctx, cancel := contextWithTimeout(r.stopc, r.cfg.ProbeTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.url("/healthz"), nil)
	if err != nil {
		return replicaHealth{}, err
	}
	resp, err := r.cfg.Client.Do(req)
	if err != nil {
		return replicaHealth{}, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyBody))
	if err != nil {
		return replicaHealth{}, err
	}
	if resp.StatusCode != http.StatusOK {
		return replicaHealth{}, fmt.Errorf("fleet: healthz status %d", resp.StatusCode)
	}
	return decodeHealth(body)
}

// catchUp stages the newest checkpoint on one stale member and
// commits it iff it is exactly the fleet generation. Reports whether
// the member reached the fleet generation.
func (r *Router) catchUp(m *member, fleetGen int64) bool {
	epoch, step, err := r.stageOn(m)
	if err != nil {
		return false
	}
	if packGen(epoch, step) != fleetGen {
		_ = r.abortOn(m) // its storage cannot produce the fleet's generation
		return false
	}
	if err := r.commitOn(m, epoch, step); err != nil {
		return false
	}
	m.gen.Store(fleetGen)
	return true
}
