// Package candlebench is the benchmark harness that regenerates every
// table and figure of the paper's evaluation (run with
// `go test -bench=. -benchmem`), plus ablation benchmarks for the
// design choices called out in DESIGN.md §7.
//
// One BenchmarkTableN / BenchmarkFigureN exists per paper artifact;
// each iteration executes the corresponding experiment driver from
// internal/core end to end, so -bench also doubles as a smoke test
// that every artifact still regenerates.
package candlebench

import (
	"fmt"
	"math/rand"
	"path/filepath"
	"testing"

	"candle/internal/candle"
	"candle/internal/checkpoint"
	"candle/internal/core"
	"candle/internal/csvio"
	"candle/internal/horovod"
	"candle/internal/hpc"
	"candle/internal/mpi"
	"candle/internal/nn"
	"candle/internal/sim"
	"candle/internal/tensor"
)

// benchExperiment runs one core experiment per iteration.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	e, ok := core.ByID(id)
	if !ok {
		b.Fatalf("no experiment %q", id)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("%s produced no rows", id)
		}
	}
}

// --- one benchmark per paper table ---

func BenchmarkTable1(b *testing.B) { benchExperiment(b, "table1") }
func BenchmarkTable2(b *testing.B) { benchExperiment(b, "table2") }
func BenchmarkTable3(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTable4(b *testing.B) { benchExperiment(b, "table4") }
func BenchmarkTable5(b *testing.B) { benchExperiment(b, "table5") }
func BenchmarkTable6(b *testing.B) { benchExperiment(b, "table6") }

// --- one benchmark per paper figure ---

func BenchmarkFigure6a(b *testing.B)  { benchExperiment(b, "fig6a") }
func BenchmarkFigure6b(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFigure7a(b *testing.B)  { benchExperiment(b, "fig7a") }
func BenchmarkFigure7b(b *testing.B)  { benchExperiment(b, "fig7b") }
func BenchmarkFigure8a(b *testing.B)  { benchExperiment(b, "fig8a") }
func BenchmarkFigure8b(b *testing.B)  { benchExperiment(b, "fig8b") }
func BenchmarkFigure9a(b *testing.B)  { benchExperiment(b, "fig9a") }
func BenchmarkFigure9b(b *testing.B)  { benchExperiment(b, "fig9b") }
func BenchmarkFigure10a(b *testing.B) { benchExperiment(b, "fig10a") }
func BenchmarkFigure10b(b *testing.B) { benchExperiment(b, "fig10b") }
func BenchmarkFigure11(b *testing.B)  { benchExperiment(b, "fig11") }
func BenchmarkFigure12(b *testing.B)  { benchExperiment(b, "fig12") }
func BenchmarkFigure13(b *testing.B)  { benchExperiment(b, "fig13") }
func BenchmarkFigure14(b *testing.B)  { benchExperiment(b, "fig14") }
func BenchmarkFigure15(b *testing.B)  { benchExperiment(b, "fig15") }
func BenchmarkFigure16(b *testing.B)  { benchExperiment(b, "fig16") }
func BenchmarkFigure17(b *testing.B)  { benchExperiment(b, "fig17") }
func BenchmarkFigure18(b *testing.B)  { benchExperiment(b, "fig18") }
func BenchmarkFigure19(b *testing.B)  { benchExperiment(b, "fig19") }
func BenchmarkFigure20(b *testing.B)  { benchExperiment(b, "fig20") }
func BenchmarkFigure21(b *testing.B)  { benchExperiment(b, "fig21") }
func BenchmarkSection54(b *testing.B) { benchExperiment(b, "sec5.4") }

// --- real-mode benchmarks: actual distributed training ---

// benchRealRun trains a scaled NT3 for real on the given rank count.
func benchRealRun(b *testing.B, ranks int) {
	b.Helper()
	bench, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, _, err := bench.PrepareData(dir, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(candle.RunConfig{
			Ranks: ranks, TotalEpochs: 8, Batch: 7, LR: 0.05,
			DataDir: dir, Seed: 1,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRealNT3Sequential(b *testing.B)   { benchRealRun(b, 1) }
func BenchmarkRealNT3Distributed4(b *testing.B) { benchRealRun(b, 4) }

// --- ablations (DESIGN.md §7) ---

// allreduceNaiveGather is the strawman allreduce: allgather everything
// and reduce locally — O(N·M) traffic per rank instead of the ring's
// O(M).
func allreduceNaiveGather(c *mpi.Comm, data []float64) error {
	all, err := c.Allgather(data)
	if err != nil {
		return err
	}
	for i := range data {
		s := 0.0
		for _, contrib := range all {
			s += contrib[i]
		}
		data[i] = s
	}
	return nil
}

func benchAllreduce(b *testing.B, ring bool) {
	const ranks, elems = 8, 65536
	w := mpi.NewWorld(ranks)
	b.SetBytes(int64(8 * elems))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(c *mpi.Comm) error {
			data := make([]float64, elems)
			for j := range data {
				data[j] = float64(c.Rank() + j)
			}
			if ring {
				return c.AllreduceSum(data)
			}
			return allreduceNaiveGather(c, data)
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationAllreduceRing(b *testing.B)   { benchAllreduce(b, true) }
func BenchmarkAblationAllreduceGather(b *testing.B) { benchAllreduce(b, false) }

// benchFusion measures the Horovod layer with fusion on or off over a
// model with many small tensors.
func benchFusion(b *testing.B, fusionBytes int) {
	const ranks = 4
	w := mpi.NewWorld(ranks)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		err := w.Run(func(c *mpi.Comm) error {
			h := horovod.Init(c, horovod.Options{FusionBytes: fusionBytes})
			d := h.DistributedOptimizer(nn.NewSGD(0.01))
			params := make([]*nn.Param, 32)
			for p := range params {
				params[p] = &nn.Param{
					Name:  fmt.Sprintf("p%d", p),
					Value: tensor.New(16, 16),
					Grad:  tensor.New(16, 16),
				}
			}
			for step := 0; step < 4; step++ {
				d.Step(params)
			}
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFusionOn(b *testing.B)  { benchFusion(b, 0) }  // default 64 MB buffer
func BenchmarkAblationFusionOff(b *testing.B) { benchFusion(b, -1) } // one allreduce per tensor

// benchChunkSize sweeps the chunked reader's chunk size on a wide CSV
// (the paper fixes 16 MB to match Spectrum Scale's largest I/O block).
func benchChunkSize(b *testing.B, chunkBytes int) {
	rng := rand.New(rand.NewSource(3))
	m := tensor.New(48, 4000)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 100
	}
	path := filepath.Join(b.TempDir(), "wide.csv")
	if err := csvio.WriteCSV(path, m); err != nil {
		b.Fatal(err)
	}
	r := &csvio.ChunkedReader{ChunkBytes: chunkBytes}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Read(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationChunk64KB(b *testing.B) { benchChunkSize(b, 64<<10) }
func BenchmarkAblationChunk1MB(b *testing.B)  { benchChunkSize(b, 1<<20) }
func BenchmarkAblationChunk16MB(b *testing.B) { benchChunkSize(b, 16<<20) }

// benchParallelWorkers sweeps the Dask-like reader's partition count.
func benchParallelWorkers(b *testing.B, workers int) {
	rng := rand.New(rand.NewSource(4))
	m := tensor.New(48, 4000)
	for i := range m.Data {
		m.Data[i] = rng.Float64() * 100
	}
	path := filepath.Join(b.TempDir(), "wide.csv")
	if err := csvio.WriteCSV(path, m); err != nil {
		b.Fatal(err)
	}
	r := csvio.NewParallelReader(workers)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Read(path); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationParallel1(b *testing.B) { benchParallelWorkers(b, 1) }
func BenchmarkAblationParallel4(b *testing.B) { benchParallelWorkers(b, 4) }
func BenchmarkAblationParallel8(b *testing.B) { benchParallelWorkers(b, 8) }

// benchPSvsRing compares the centralized parameter-server baseline
// (the gRPC-style distribution the paper says is "difficult to use and
// optimize") against the Horovod ring on a real training step.
func benchDistStrategy(b *testing.B, ps bool) {
	bench, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	if _, _, err := bench.PrepareData(dir, 1); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Run(candle.RunConfig{
			Ranks: 4, TotalEpochs: 8, Batch: 7, LR: 0.05,
			DataDir: dir, Seed: 1, ParameterServer: ps,
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationRingAllreduceTraining(b *testing.B) { benchDistStrategy(b, false) }
func BenchmarkAblationParamServerTraining(b *testing.B)   { benchDistStrategy(b, true) }

// BenchmarkCheckpointSaveRestore measures the checkpoint/restart
// feature (paper §7 future work).
func BenchmarkCheckpointSaveRestore(b *testing.B) {
	m := nn.NewSequential("ckpt", nn.NewDense(256), nn.NewReLU(), nn.NewDense(64), nn.NewDense(8))
	if err := m.Compile(128, nn.MeanSquaredError{}, nn.NewSGD(0.01), 1); err != nil {
		b.Fatal(err)
	}
	dir := b.TempDir()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path := checkpoint.FileFor(dir, "bench", i%8)
		if err := checkpoint.Save(path, &checkpoint.Snapshot{
			Benchmark: "bench", Epoch: i % 8, Weights: m.WeightsVector(),
		}); err != nil {
			b.Fatal(err)
		}
		s, err := checkpoint.Load(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := checkpoint.Restore(m, s, "bench"); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDESRun measures the event-driven simulator against the
// closed form it cross-validates.
func BenchmarkDESRun(b *testing.B) {
	nt3, err := sim.BenchByName("NT3")
	if err != nil {
		b.Fatal(err)
	}
	cfg := sim.Config{Machine: hpc.Summit(), Bench: nt3, Ranks: 384,
		Scaling: sim.Strong, Loader: sim.LoaderNaive}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.RunDES(cfg, sim.DESOptions{ComputeJitter: 0.05}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationEpochBalance compares the paper's comp_epochs
// (remainder piled onto the last rank) against the balanced variant by
// measuring the straggler factor: max epochs / mean epochs.
func BenchmarkAblationEpochBalance(b *testing.B) {
	b.ReportAllocs()
	worst := 0.0
	for i := 0; i < b.N; i++ {
		for _, ranks := range []int{5, 7, 48, 96, 384} {
			total := 384
			maxE, sum := 0, 0
			for r := 0; r < ranks; r++ {
				e := horovod.CompEpochs(total, r, ranks)
				sum += e
				if e > maxE {
					maxE = e
				}
			}
			straggler := float64(maxE) * float64(ranks) / float64(sum)
			if straggler > worst {
				worst = straggler
			}
		}
	}
	b.ReportMetric(worst, "straggler-factor")
}
