// candle-sweep regenerates one (or all) of the paper's tables and
// figures from the calibrated models.
//
// Examples:
//
//	candle-sweep -exp fig6a
//	candle-sweep -exp table3 -csv
//	candle-sweep -exp all
//	candle-sweep -list
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/core"
	"candle/internal/report"
)

func main() {
	var (
		exp   = flag.String("exp", "all", "experiment ID (e.g. fig6a, table3, sec5.4) or 'all'")
		csv   = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		chart = flag.Int("chart", -1, "also render an ASCII bar chart of this column index (labels from column 0)")
		list  = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()
	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		for _, e := range core.ExtraExperiments() {
			fmt.Printf("%-8s %s (extra)\n", e.ID, e.Title)
		}
		return
	}
	if err := run(*exp, *csv, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "candle-sweep:", err)
		os.Exit(1)
	}
}

func run(exp string, csv bool, chart int) error {
	var exps []core.Experiment
	if exp == "all" {
		exps = core.Experiments()
	} else {
		e, ok := core.ByIDAll(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		exps = []core.Experiment{e}
	}
	for _, e := range exps {
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
		if chart >= 0 {
			c, err := report.ChartFromTable(t, 0, chart)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(c.String())
		}
	}
	return nil
}
