// candle-sweep regenerates one (or all) of the paper's tables and
// figures from the calibrated models.
//
// Examples:
//
//	candle-sweep -exp fig6a
//	candle-sweep -exp table3 -csv
//	candle-sweep -exp all
//	candle-sweep -list
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"candle/internal/candle"
	"candle/internal/core"
	"candle/internal/report"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment ID (e.g. fig6a, table3, sec5.4) or 'all'")
		csv     = flag.Bool("csv", false, "emit CSV instead of an aligned table")
		chart   = flag.Int("chart", -1, "also render an ASCII bar chart of this column index (labels from column 0)")
		list    = flag.Bool("list", false, "list experiment IDs and exit")
		loaders = flag.String("loaders", "", "run a real-mode phase-1 comparison of every registered CSV engine on this benchmark (e.g. NT3)")
	)
	flag.Parse()
	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		for _, e := range core.ExtraExperiments() {
			fmt.Printf("%-8s %s (extra)\n", e.ID, e.Title)
		}
		return
	}
	if *loaders != "" {
		if err := runLoaders(*loaders); err != nil {
			fmt.Fprintln(os.Stderr, "candle-sweep:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*exp, *csv, *chart); err != nil {
		fmt.Fprintln(os.Stderr, "candle-sweep:", err)
		os.Exit(1)
	}
}

// runLoaders is the real-mode analogue of Tables 3/4: generate the
// benchmark's CSVs and time phase 1 under every registered engine.
// Two rounds, so the sharded engine's cold parse and warm binary
// cache both appear.
func runLoaders(bench string) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "candle-sweep-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, _, err := b.PrepareData(dir, 1); err != nil {
		return err
	}
	for round, label := range []string{"cold", "warm"} {
		times, err := b.CompareLoaders(dir)
		if err != nil {
			return err
		}
		names := make([]string, 0, len(times))
		for name := range times {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Printf("%s phase-1 load (%s, round %d):\n", bench, label, round+1)
		for _, name := range names {
			fmt.Printf("  %-40s %10.4f s\n", name, times[name])
		}
	}
	return nil
}

func run(exp string, csv bool, chart int) error {
	var exps []core.Experiment
	if exp == "all" {
		exps = core.Experiments()
	} else {
		e, ok := core.ByIDAll(exp)
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", exp)
		}
		exps = []core.Experiment{e}
	}
	for _, e := range exps {
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		if csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
		if chart >= 0 {
			c, err := report.ChartFromTable(t, 0, chart)
			if err != nil {
				return fmt.Errorf("%s: %w", e.ID, err)
			}
			fmt.Println(c.String())
		}
	}
	return nil
}
