package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run("table1", false, -1); err != nil {
		t.Fatal(err)
	}
	if err := run("fig12", true, -1); err != nil {
		t.Fatal(err)
	}
	if err := run("xfusion", false, 2); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("fig99", false, -1); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunAllPaperExperiments(t *testing.T) {
	if err := run("all", true, -1); err != nil {
		t.Fatal(err)
	}
}
