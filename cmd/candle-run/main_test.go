package main

import "testing"

func TestRunSimMode(t *testing.T) {
	if err := runMain("NT3", "sim", "summit", 48, 0, 0, "chunked", false, false, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := runMain("NT3", "sim", "summit", 768, 8, 0, "naive", true, false, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := runMain("P1B1", "sim", "theta", 24, 0, 0, "parallel", false, false, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRealMode(t *testing.T) {
	if err := runMain("NT3", "real", "", 2, 4, 7, "chunked", false, true, 3, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := runMain("NT3", "bogus", "summit", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := runMain("NT3", "sim", "frontier", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := runMain("NT3", "sim", "summit", 1, 0, 0, "warp", false, false, 1, ""); err == nil {
		t.Fatal("bad loader accepted")
	}
	if err := runMain("NT99", "sim", "summit", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	// OOM config surfaces as an error.
	if err := runMain("NT3", "sim", "summit", 6, 0, 50, "naive", false, false, 1, ""); err == nil {
		t.Fatal("OOM batch accepted")
	}
}
