package main

import (
	"path/filepath"
	"testing"

	"candle/internal/candle"
)

func TestRunSimMode(t *testing.T) {
	if err := runMain("NT3", "sim", "summit", 48, 0, 0, "chunked", false, false, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := runMain("NT3", "sim", "summit", 768, 8, 0, "naive", true, false, 1, ""); err != nil {
		t.Fatal(err)
	}
	if err := runMain("P1B1", "sim", "theta", 24, 0, 0, "parallel", false, false, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunRealMode(t *testing.T) {
	if err := runMain("NT3", "real", "", 2, 4, 7, "chunked", false, true, 3, t.TempDir()); err != nil {
		t.Fatal(err)
	}
}

// TestRunRealServeRendezvous exercises the hand-run two-terminal form
// the README documents: -serve-rendezvous makes worker 0 host the
// round at the agreed address while a second worker (here driven
// through the candle API, standing in for the other terminal) joins
// the same address.
func TestRunRealServeRendezvous(t *testing.T) {
	dir := t.TempDir()
	addr := filepath.Join(dir, "rdv.sock")
	t.Cleanup(func() {
		transportName, rendezvousAddr, localRanks, procIndex, serveRdv = "", "", 0, 0, false
	})
	transportName, rendezvousAddr = "unix", addr
	localRanks, procIndex, serveRdv = 1, 0, true

	// The peer mirrors runReal exactly (same benchmark scale, same
	// config); the host prepares the shared CSVs before it serves the
	// round, and the peer only reads them after the round completes.
	b, err := candle.Default("NT3")
	if err != nil {
		t.Fatal(err)
	}
	dataDir := t.TempDir()
	peerErr := make(chan error, 1)
	go func() {
		_, err := b.Run(candle.RunConfig{
			Ranks: 2, TotalEpochs: 2, Batch: 7, Seed: 3, ScaleLR: true,
			DataDir: dataDir, Transport: "unix", Rendezvous: addr,
			LocalRanks: 1, ProcIndex: 1,
		})
		peerErr <- err
	}()
	if err := runMain("NT3", "real", "", 2, 2, 7, "chunked", false, true, 3, dataDir); err != nil {
		t.Fatal(err)
	}
	if err := <-peerErr; err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := runMain("NT3", "bogus", "summit", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad mode accepted")
	}
	if err := runMain("NT3", "sim", "frontier", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := runMain("NT3", "sim", "summit", 1, 0, 0, "warp", false, false, 1, ""); err == nil {
		t.Fatal("bad loader accepted")
	}
	if err := runMain("NT99", "sim", "summit", 1, 0, 0, "naive", false, false, 1, ""); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	// OOM config surfaces as an error.
	if err := runMain("NT3", "sim", "summit", 6, 0, 50, "naive", false, false, 1, ""); err == nil {
		t.Fatal("OOM batch accepted")
	}
}
