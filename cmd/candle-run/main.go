// candle-run executes one CANDLE benchmark, either for real (ranks as
// goroutines training actual models on generated data) or simulated
// at paper scale on the Summit/Theta machine models.
//
// Examples:
//
//	candle-run -bench NT3 -mode real -ranks 4 -epochs 16
//	candle-run -bench NT3 -mode sim -machine summit -ranks 384 -loader chunked
//	candle-run -bench P1B3 -mode sim -ranks 48 -batch 363 -epochs 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"candle/internal/candle"
	"candle/internal/csvio"
	"candle/internal/hpc"
	"candle/internal/launch"
	"candle/internal/mpi"
	"candle/internal/sim"
	"candle/internal/trace"
)

// psMode selects the parameter-server baseline for real-mode runs.
var psMode bool

// timelineOut, when non-empty, receives the real run's Chrome trace.
var timelineOut string

// injectFault holds the parsed -inject-fault plan (nil = no faults).
var injectFault *mpi.FaultPlan

// elastic enables elastic restart on rank failure in real mode.
var elastic bool

// ckptDir is the real-mode checkpoint directory (elastic recovery
// restores from it after a kill).
var ckptDir string

// overlapMode enables the async gradient pipeline in real mode:
// allreduce overlaps with backward compute, bit-identical results.
var overlapMode bool

// cacheDir overrides where the sharded engine's binary cache lives.
var cacheDir string

// dtypeMode selects the real-mode compute precision ("f32" or "f64";
// empty = f64 reference path).
var dtypeMode string

// Distributed-mode settings (real mode): transportName picks the rank
// link layer, and a non-empty rendezvous address turns this process
// into one worker of a multi-process world (normally under
// candle-launch, which sets the rest).
var (
	transportName  string
	rendezvousAddr string
	rendezvousNet  string
	localRanks     int
	procIndex      int
	generation     int
	serveRdv       bool
)

func main() {
	var (
		bench   = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		mode    = flag.String("mode", "sim", "real (in-process training) or sim (paper-scale model)")
		machine = flag.String("machine", "summit", "sim machine: summit or theta")
		ranks   = flag.Int("ranks", 6, "workers (GPUs on Summit, nodes on Theta)")
		epochs  = flag.Int("epochs", 0, "total epochs (strong) or per-rank (weak); 0 = benchmark default")
		batch   = flag.Int("batch", 0, "batch size; 0 = benchmark default")
		loader  = flag.String("loader", "naive", "data engine: naive, chunked, parallel (sim + real), or any registered engine such as sharded (real)")
		cache   = flag.String("cache-dir", "", "binary cache directory for the sharded engine (real mode); empty = alongside the CSVs")
		weak    = flag.Bool("weak", false, "weak scaling (epochs per rank constant)")
		scaleLR = flag.Bool("scale-lr", false, "linear learning-rate scaling (real mode)")
		seed    = flag.Int64("seed", 42, "data/init seed (real mode)")
		dataDir = flag.String("data-dir", "", "directory for generated CSVs (real mode); empty = temp dir")
		ps      = flag.Bool("ps", false, "use the parameter-server baseline instead of allreduce (real mode)")
		tlOut   = flag.String("timeline", "", "write a Chrome-trace timeline of the real run to this file")
		fault   = flag.String("inject-fault", "", "kill a rank at a collective step, as rank@step, e.g. 2@5 (real mode)")
		elast   = flag.Bool("elastic", false, "recover from rank failures by restarting on a shrunken world (real mode)")
		ckpt    = flag.String("checkpoint-dir", "", "checkpoint directory (real mode); elastic recovery resumes from it")
		overlap = flag.Bool("overlap", false, "overlap gradient allreduce with backward compute (real mode)")
		dtype   = flag.String("dtype", "f64", "compute precision: f32 (packed float32 kernels, fused layers) or f64 (real mode)")
		transp  = flag.String("transport", "", "rank link layer: inproc (default), unix, or tcp (real mode)")
		rdv     = flag.String("rendezvous", "", "rendezvous address: join a multi-process world as one worker (real mode; -ranks is then the total world size)")
		rdvNet  = flag.String("rendezvous-network", "", "rendezvous socket family: unix or tcp; empty derives it from -transport")
		lranks  = flag.Int("local-ranks", 0, "ranks this worker process hosts (distributed real mode)")
		procIdx = flag.Int("proc-index", 0, "this worker's index in the launch group (distributed real mode)")
		gen     = flag.Int("generation", 0, "elastic world generation stamp from the launcher (distributed real mode)")
		srvRdv  = flag.Bool("serve-rendezvous", false, "also host the rendezvous round at -rendezvous (the hand-run form: set on exactly one worker)")
	)
	flag.Parse()
	psMode = *ps
	cacheDir = *cache
	dtypeMode = *dtype
	timelineOut = *tlOut
	elastic = *elast
	ckptDir = *ckpt
	overlapMode = *overlap
	transportName = *transp
	rendezvousAddr = *rdv
	rendezvousNet = *rdvNet
	localRanks = *lranks
	procIndex = *procIdx
	generation = *gen
	serveRdv = *srvRdv
	if *fault != "" {
		plan, err := parseFault(*fault)
		if err != nil {
			fmt.Fprintln(os.Stderr, "candle-run:", err)
			os.Exit(1)
		}
		injectFault = plan
	}
	if err := runMain(*bench, *mode, *machine, *ranks, *epochs, *batch, *loader, *weak, *scaleLR, *seed, *dataDir); err != nil {
		fmt.Fprintln(os.Stderr, "candle-run:", err)
		os.Exit(1)
	}
}

func runMain(bench, mode, machine string, ranks, epochs, batch int, loader string, weak, scaleLR bool, seed int64, dataDir string) error {
	switch mode {
	case "sim":
		return runSim(bench, machine, ranks, epochs, batch, loader, weak)
	case "real":
		return runReal(bench, ranks, epochs, batch, loader, weak, scaleLR, seed, dataDir)
	default:
		return fmt.Errorf("unknown mode %q", mode)
	}
}

// parseFault parses the -inject-fault syntax "rank@step" into a plan
// that kills that rank at that collective step.
func parseFault(s string) (*mpi.FaultPlan, error) {
	at := strings.SplitN(s, "@", 2)
	if len(at) != 2 {
		return nil, fmt.Errorf("bad -inject-fault %q, want rank@step (e.g. 2@5)", s)
	}
	rank, err := strconv.Atoi(at[0])
	if err != nil || rank < 0 {
		return nil, fmt.Errorf("bad -inject-fault rank %q", at[0])
	}
	step, err := strconv.Atoi(at[1])
	if err != nil || step < 0 {
		return nil, fmt.Errorf("bad -inject-fault step %q", at[1])
	}
	return mpi.NewFaultPlan().KillAt(rank, step), nil
}

func runSim(bench, machine string, ranks, epochs, batch int, loader string, weak bool) error {
	m, err := hpc.ByName(machine)
	if err != nil {
		return err
	}
	b, err := sim.BenchByName(bench)
	if err != nil {
		return err
	}
	ld, err := sim.LoaderByName(loader)
	if err != nil {
		return err
	}
	scaling := sim.Strong
	if weak {
		scaling = sim.Weak
	}
	r, err := sim.Run(sim.Config{
		Machine: m, Bench: b, Ranks: ranks, Scaling: scaling,
		Epochs: epochs, Batch: batch, Loader: ld,
	})
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s, %d workers, %s scaling, batch %d, %s loader\n",
		bench, m.Name, ranks, scaling, r.Batch, ld)
	fmt.Printf("  epochs/rank        %d (%d steps/epoch)\n", r.EpochsPerRank, r.StepsPerEpoch)
	fmt.Printf("  data loading       %10.2f s\n", r.LoadTime)
	fmt.Printf("  broadcast          %10.2f s\n", r.BroadcastTime)
	fmt.Printf("  training           %10.2f s  (%.2f s/epoch)\n", r.TrainTime, r.TimePerEpoch)
	fmt.Printf("  evaluation         %10.2f s\n", r.EvalTime)
	fmt.Printf("  total              %10.2f s\n", r.TotalTime)
	if b.Classification {
		fmt.Printf("  accuracy           %10.4f\n", r.Accuracy)
	}
	if b.LossAmp > 0 {
		fmt.Printf("  loss               %10.4f\n", r.Loss)
	}
	fmt.Printf("  avg device power   %10.1f W\n", r.AvgPowerW)
	fmt.Printf("  energy             %10.1f kJ/device, %.1f kJ total\n", r.EnergyJ/1e3, r.TotalEnergyJ/1e3)
	return nil
}

func runReal(bench string, ranks, epochs, batch int, loader string, weak, scaleLR bool, seed int64, dataDir string) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	// Real mode resolves the engine through the csvio registry, so any
	// registered engine — including internal/dataload's "sharded" —
	// is a valid -loader value.
	reader, err := csvio.ByName(loader)
	if err != nil {
		return err
	}
	if dataDir == "" {
		dir, err := os.MkdirTemp("", "candle-data-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		dataDir = dir
	}
	if _, _, err := b.PrepareData(dataDir, seed); err != nil {
		return err
	}
	if epochs <= 0 {
		epochs = 16
	}
	var tl *trace.Timeline
	if timelineOut != "" {
		tl = trace.NewTimeline()
	}
	cfg := candle.RunConfig{
		Ranks: ranks, TotalEpochs: epochs, WeakScaling: weak, Batch: batch,
		DType:  dtypeMode,
		Engine: loader, CacheDir: cacheDir,
		DataDir: dataDir, Seed: seed, ScaleLR: scaleLR,
		ParameterServer: psMode, Timeline: tl, Overlap: overlapMode,
		Faults: injectFault, Elastic: elastic,
		CheckpointDir: ckptDir, Resume: ckptDir != "" && (elastic || generation > 0),
		Transport: transportName, Rendezvous: rendezvousAddr,
		RendezvousNetwork: rendezvousNet, LocalRanks: localRanks,
		ProcIndex: procIndex, Generation: generation,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	if serveRdv {
		// The hand-run two-terminal form: this worker also hosts the
		// rendezvous round the others (and itself) join. Under
		// candle-launch the launcher serves instead.
		if rendezvousAddr == "" {
			return fmt.Errorf("-serve-rendezvous needs -rendezvous")
		}
		if localRanks <= 0 || ranks%localRanks != 0 {
			return fmt.Errorf("-serve-rendezvous derives the proc count from -ranks/-local-ranks; %d ranks do not split into %d-rank workers", ranks, localRanks)
		}
		network := rendezvousNet
		if network == "" {
			network = transportName
		}
		srv, err := launch.Serve(launch.ServerConfig{
			Network: network, Addr: rendezvousAddr,
			Procs: ranks / localRanks, Gen: generation,
		})
		if err != nil {
			return err
		}
		defer srv.Close()
	}
	res, err := b.Run(cfg)
	if err != nil {
		return err
	}
	for _, f := range res.Failures {
		fmt.Printf("  rank %d failed in %s on a %d-rank world; restarted on %d ranks\n",
			f.Rank, f.Op, f.WorldSize, f.WorldSize-1)
	}
	if tl != nil {
		f, err := os.Create(timelineOut)
		if err != nil {
			return err
		}
		if err := tl.WriteJSON(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("timeline: %d events -> %s\n", tl.Len(), timelineOut)
	}
	r := res.Root
	if rendezvousAddr != "" {
		lo := res.Ranks[0].Rank
		fmt.Printf("worker %d: ranks %d..%d of a %d-rank world over %s\n",
			procIndex, lo, lo+len(res.Ranks)-1, ranks, transportName)
	}
	fmt.Printf("%s (real, scaled dataset %dx%d), %d ranks, %d epochs/rank, %s loader\n",
		bench, b.Spec.TrainSamples, b.Spec.Features, len(res.Ranks), r.Epochs, reader.Name())
	fmt.Printf("  data loading   %8.4f s\n", r.LoadSeconds)
	fmt.Printf("  training       %8.4f s\n", r.TrainSeconds)
	fmt.Printf("  evaluation     %8.4f s\n", r.EvalSeconds)
	fmt.Printf("  total          %8.4f s\n", r.TotalSeconds)
	fmt.Printf("  final loss     %8.4f   train acc %.3f   test acc %.3f\n",
		r.FinalLoss, r.TrainAccuracy, r.TestAccuracy)
	fmt.Printf("  allreduce ops  %d\n", r.AllreduceCalls)
	return nil
}
