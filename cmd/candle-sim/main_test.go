package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunMainSingleSeedPasses(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runMain([]string{"-seed", "7", "-check", "faults"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, out.String(), errOut.String())
	}
	if !strings.Contains(out.String(), "ok   seed 7") || !strings.Contains(out.String(), "PASS 1 seed(s)") {
		t.Fatalf("output: %s", out.String())
	}
}

func TestRunMainSweepEchoesSeeds(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runMain([]string{"-seeds", "2", "-start-seed", "3", "-check", "faults"}, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, errOut.String())
	}
	for _, want := range []string{"ok   seed 3", "ok   seed 4", "PASS 2 seed(s)"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("missing %q in output:\n%s", want, out.String())
		}
	}
}

// TestRunMainFailureEchoesRepro: an impossible watchdog deadline makes
// the base run "deadlock", which must fail fast with exit 1, the typed
// no-hang violation, the repro line, and the goroutine dump.
func TestRunMainFailureEchoesRepro(t *testing.T) {
	var out, errOut bytes.Buffer
	code := runMain([]string{"-seed", "5", "-check", "faults", "-timeout", "1ns"}, &out, &errOut)
	if code != 1 {
		t.Fatalf("exit %d, want 1\nstdout: %s", code, out.String())
	}
	for _, want := range []string{"no-hang", "repro: candle-sim -seed 5 -verbose", "goroutine"} {
		if !strings.Contains(errOut.String(), want) {
			t.Fatalf("missing %q in stderr:\n%s", want, errOut.String())
		}
	}
}

func TestRunMainRejectsUnknownCheck(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := runMain([]string{"-check", "bogus"}, &out, &errOut); code != 2 {
		t.Fatalf("exit %d, want 2", code)
	}
	if code := runMain([]string{"-nosuchflag"}, &out, &errOut); code != 2 {
		t.Fatalf("flag error exit, want 2")
	}
}
