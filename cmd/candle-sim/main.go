// Command candle-sim is the seeded scenario simulator: it draws a full
// run configuration from a seed — pilot, ranks, engine, precision,
// overlap, parameter server, fault plan, checkpoint cadence — executes
// it under a deadlock watchdog, and checks machine-verified invariants
// (determinism, checkpoint import/export, fault outcomes, and the
// overlap, dtype, and transport equivalences). Every failure prints a
// one-line repro.
//
//	candle-sim -seed 42 -verbose          # replay one seed, narrated
//	candle-sim -seeds 25                  # sweep seeds 1..25, fail fast
//	candle-sim -seed 42 -shrink           # minimize a failing fault plan
//	candle-sim -seeds 50 -check dtype     # one invariant family only
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"candle/internal/scenario"
)

func main() {
	os.Exit(runMain(os.Args[1:], os.Stdout, os.Stderr))
}

func runMain(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("candle-sim", flag.ContinueOnError)
	fs.SetOutput(stderr)
	seed := fs.Int64("seed", 1, "scenario seed to check")
	seeds := fs.Int("seeds", 0, "sweep this many consecutive seeds starting at -start-seed (0 = just -seed)")
	startSeed := fs.Int64("start-seed", 1, "first seed of a -seeds sweep")
	check := fs.String("check", "all", "invariant selection: all, determinism, overlap, dtype, import-export, transport, faults")
	timeout := fs.Duration("timeout", 2*time.Minute, "per-run watchdog timeout before declaring a deadlock")
	shrink := fs.Bool("shrink", false, "on failure, bisect the fault plan to a minimal failing scenario")
	verbose := fs.Bool("verbose", false, "narrate every run")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	checks, err := scenario.ParseChecks(*check)
	if err != nil {
		fmt.Fprintln(stderr, err)
		return 2
	}
	h := &scenario.Harness{Timeout: *timeout}
	if *verbose {
		h.Log = stdout
	}

	list := []int64{*seed}
	if *seeds > 0 {
		list = list[:0]
		for i := 0; i < *seeds; i++ {
			list = append(list, *startSeed+int64(i))
		}
	}
	start := time.Now()
	for _, s := range list {
		sc := scenario.Sample(s)
		err := h.Check(sc, checks)
		if err == nil {
			fmt.Fprintf(stdout, "ok   seed %d (%s)\n", s, sc.Describe())
			continue
		}
		// Fail fast, echoing the seed: the Violation's Error string
		// carries the scenario and the repro line.
		fmt.Fprintf(stderr, "FAIL %v\n", err)
		var dl *scenario.DeadlockError
		if errors.As(err, &dl) {
			fmt.Fprintf(stderr, "goroutine stacks at the deadline:\n%s\n", dl.Stacks)
		}
		if *shrink && len(sc.Faults) > 0 {
			min, minErr := h.ShrinkFaults(sc, checks)
			if minErr != nil {
				specs := make([]string, len(min.Faults))
				for i, f := range min.Faults {
					specs[i] = f.String()
				}
				fmt.Fprintf(stderr, "minimal failing fault plan: [%s]\nminimal scenario: %s\n",
					strings.Join(specs, " "), min.Describe())
			}
		}
		return 1
	}
	fmt.Fprintf(stdout, "PASS %d seed(s) in %.1fs\n", len(list), time.Since(start).Seconds())
	return 0
}
