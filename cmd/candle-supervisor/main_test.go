package main

import (
	"path/filepath"
	"testing"
)

func TestRunSupervisorGrid(t *testing.T) {
	db := filepath.Join(t.TempDir(), "trials.json")
	if err := run("P1B2", "grid", 0, 4, 2, 2, 1, db); err != nil {
		t.Fatal(err)
	}
}

func TestRunSupervisorRandom(t *testing.T) {
	if err := run("P1B2", "random", 2, 2, 2, 2, 1, ""); err != nil {
		t.Fatal(err)
	}
}

func TestRunSupervisorErrors(t *testing.T) {
	if err := run("NT99", "grid", 0, 1, 1, 1, 1, ""); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if err := run("NT3", "annealing", 0, 1, 1, 1, 1, ""); err == nil {
		t.Fatal("bad strategy accepted")
	}
}
