// candle-supervisor runs a CANDLE/Supervisor-style hyperparameter
// search over a benchmark: grid or random sampling of learning rate
// and batch size, trials dispatched to a worker pool (each trial is a
// real in-process training run on the scaled dataset), results stored
// in a JSON database.
//
// Examples:
//
//	candle-supervisor -bench NT3 -strategy grid -workers 4
//	candle-supervisor -bench P1B2 -strategy random -trials 12 -db trials.json
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"candle/internal/candle"
	"candle/internal/supervisor"
)

func main() {
	var (
		bench    = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		strategy = flag.String("strategy", "grid", "grid, random, or halving")
		trials   = flag.Int("trials", 8, "trial count (random strategy)")
		workers  = flag.Int("workers", 4, "parallel trial workers")
		epochs   = flag.Int("epochs", 12, "epochs per trial")
		ranks    = flag.Int("ranks", 2, "Horovod ranks per trial")
		seed     = flag.Int64("seed", 1, "search + data seed")
		db       = flag.String("db", "", "JSON trial database (empty = in-memory)")
	)
	flag.Parse()
	if err := run(*bench, *strategy, *trials, *workers, *epochs, *ranks, *seed, *db); err != nil {
		fmt.Fprintln(os.Stderr, "candle-supervisor:", err)
		os.Exit(1)
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func run(bench, strategy string, trials, workers, epochs, ranks int, seed int64, db string) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "candle-sup-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, _, err := b.PrepareData(dir, seed); err != nil {
		return err
	}

	dims := []supervisor.Dimension{
		{Name: "lr", Values: []float64{0.005, 0.02, 0.05, 0.1}, Min: 0.001, Max: 0.2, Log: true},
		{Name: "batch", Values: []float64{5, 10, 20}, Min: 5, Max: 20},
	}
	var space []supervisor.Params
	switch strategy {
	case "grid", "halving":
		space, err = supervisor.GridSpace(dims)
	case "random":
		space, err = supervisor.RandomSpace(dims, trials, seed)
	default:
		return fmt.Errorf("unknown strategy %q", strategy)
	}
	if err != nil {
		return err
	}

	var store supervisor.Store
	if db != "" {
		fs, err := supervisor.OpenFileStore(db)
		if err != nil {
			return err
		}
		store = fs
	}
	sup := supervisor.New(workers, store)
	objective := func(p supervisor.Params) (supervisor.Result, error) {
		start := time.Now()
		res, err := b.Run(candle.RunConfig{
			Ranks: ranks, TotalEpochs: epochs,
			Batch: int(p["batch"]), LR: p["lr"],
			DataDir: dir, Seed: seed,
		})
		if err != nil {
			return supervisor.Result{}, err
		}
		return supervisor.Result{
			Loss:     res.Root.TestLoss,
			Accuracy: res.Root.TestAccuracy,
			Seconds:  time.Since(start).Seconds(),
		}, nil
	}

	fmt.Printf("searching %d trials (%s) over %d workers for %s…\n", len(space), strategy, workers, bench)
	if strategy == "halving" {
		budgetObj := func(p supervisor.Params, budget int) (supervisor.Result, error) {
			start := time.Now()
			res, err := b.Run(candle.RunConfig{
				Ranks: ranks, TotalEpochs: budget,
				Batch: int(p["batch"]), LR: p["lr"],
				DataDir: dir, Seed: seed,
			})
			if err != nil {
				return supervisor.Result{}, err
			}
			return supervisor.Result{
				Loss:     res.Root.TestLoss,
				Accuracy: res.Root.TestAccuracy,
				Seconds:  time.Since(start).Seconds(),
			}, nil
		}
		rungsRes, best, err := sup.RunHalving(space, budgetObj, supervisor.HalvingConfig{InitialBudget: maxInt(1, epochs/4)})
		if err != nil {
			return err
		}
		for _, rung := range rungsRes {
			fmt.Printf("  rung %d (budget %d epochs): %d trials, %d survivors\n",
				rung.Rung, rung.Budget, len(rung.Trials), len(rung.Survivors))
		}
		fmt.Printf("best: lr=%.4f batch=%.0f (test loss %.4f, accuracy %.3f)\n",
			best.Params["lr"], best.Params["batch"], best.Result.Loss, best.Result.Accuracy)
		return nil
	}
	results, err := sup.Run(space, objective)
	if err != nil {
		return err
	}
	for _, tr := range results {
		if tr.Err != "" {
			fmt.Printf("  trial %2d lr=%.4f batch=%2.0f  FAILED: %s\n", tr.ID, tr.Params["lr"], tr.Params["batch"], tr.Err)
			continue
		}
		fmt.Printf("  trial %2d lr=%.4f batch=%2.0f  test_loss=%.4f test_acc=%.3f (%.2fs)\n",
			tr.ID, tr.Params["lr"], tr.Params["batch"], tr.Result.Loss, tr.Result.Accuracy, tr.Result.Seconds)
	}
	best, ok := supervisor.Best(results, supervisor.MinLoss)
	if !ok {
		return fmt.Errorf("every trial failed")
	}
	fmt.Printf("best: lr=%.4f batch=%.0f (test loss %.4f, accuracy %.3f)\n",
		best.Params["lr"], best.Params["batch"], best.Result.Loss, best.Result.Accuracy)
	if db != "" {
		fmt.Printf("trial database: %s\n", db)
	}
	return nil
}
