package main

import (
	"bytes"
	"encoding/json"
	"os"
	"strings"
	"testing"
	"time"

	"candle/internal/candle"
)

// TestMain doubles as the worker entry point: the launcher re-executes
// this test binary with the worker config in the environment, exactly
// the way the shipped binary re-executes itself.
func TestMain(m *testing.M) {
	if cfg := os.Getenv(workerEnvConfig); cfg != "" {
		os.Exit(workerMain(cfg, os.Stdout, os.Stderr))
	}
	os.Exit(m.Run())
}

// smokeOpts is the pinned-seed 2-process × 2-rank NT3 configuration
// the launch-smoke CI target runs.
func smokeOpts(t *testing.T) options {
	return options{
		Bench: "NT3", SampleDiv: 40, FeatureDiv: 1500,
		Procs: 2, Ranks: 4, Epochs: 8, Batch: 7, LR: 0.05, Seed: 11,
		Loader: "naive", Transport: "unix",
		Out:     t.TempDir() + "/launch.json",
		Timeout: 2 * time.Minute, ChaosKill: -1,
	}
}

func launchAndRead(t *testing.T, o options) *launchResult {
	t.Helper()
	var out bytes.Buffer
	if err := runMain(o, &out, os.Stderr, make(chan struct{})); err != nil {
		t.Fatalf("launch failed: %v\noutput:\n%s", err, out.String())
	}
	raw, err := os.ReadFile(o.Out)
	if err != nil {
		t.Fatal(err)
	}
	var res launchResult
	if err := json.Unmarshal(raw, &res); err != nil {
		t.Fatal(err)
	}
	return &res
}

// TestLaunchSmokeBitIdentical is the ISSUE acceptance run as real OS
// processes: 2 procs × 2 ranks over unix sockets must match the 4-rank
// in-process run of the same pinned seed, weight checksum for weight
// checksum.
func TestLaunchSmokeBitIdentical(t *testing.T) {
	b, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := b.PrepareData(dir, 11); err != nil {
		t.Fatal(err)
	}
	want, err := b.Run(candle.RunConfig{
		Ranks: 4, TotalEpochs: 8, Batch: 7, LR: 0.05, DataDir: dir, Seed: 11,
	})
	if err != nil {
		t.Fatal(err)
	}

	res := launchAndRead(t, smokeOpts(t))
	if res.Generations != 1 || len(res.Failures) != 0 {
		t.Fatalf("clean launch reports %d generations, %d failures", res.Generations, len(res.Failures))
	}
	if len(res.Ranks) != 4 {
		t.Fatalf("launch returned %d ranks, want 4", len(res.Ranks))
	}
	for i, r := range res.Ranks {
		w := want.Ranks[i]
		if r.Rank != w.Rank {
			t.Fatalf("rank order mismatch at %d: %d vs %d", i, r.Rank, w.Rank)
		}
		if r.WeightsChecksum != w.WeightsChecksum {
			t.Fatalf("rank %d checksum %v != in-process %v (not bit-identical)", r.Rank, r.WeightsChecksum, w.WeightsChecksum)
		}
		if r.FinalLoss != w.FinalLoss || r.TrainAccuracy != w.TrainAccuracy {
			t.Fatalf("rank %d metrics (%v, %v) != (%v, %v)", r.Rank, r.FinalLoss, r.TrainAccuracy, w.FinalLoss, w.TrainAccuracy)
		}
	}
}

// TestLaunchProcessKillSurfacesRankFailure: SIGKILL one worker process
// mid-run without -elastic; the launcher must report a rank failure
// naming a rank the dead process hosted, fed by the survivors' typed
// *mpi.RankFailedError.
func TestLaunchProcessKillSurfacesRankFailure(t *testing.T) {
	o := smokeOpts(t)
	o.Epochs = 40
	o.CkptDir = t.TempDir()
	o.ChaosKill = 1
	var out bytes.Buffer
	err := runMain(o, &out, os.Stderr, make(chan struct{}))
	if err == nil {
		t.Fatalf("launch survived a killed worker without -elastic\noutput:\n%s", out.String())
	}
	if !strings.Contains(err.Error(), "rank 2 failed") && !strings.Contains(err.Error(), "rank 3 failed") {
		t.Fatalf("error %q does not name a rank of the killed proc", err)
	}
}

// TestLaunchElasticSurvivesProcessKill: same SIGKILL, but with
// -elastic the survivors respawn as generation 1, resume from the
// checkpoint, and finish in sync on the shrunken world.
func TestLaunchElasticSurvivesProcessKill(t *testing.T) {
	o := smokeOpts(t)
	o.Epochs = 40
	o.CkptDir = t.TempDir()
	o.ChaosKill = 1
	o.Elastic = true
	res := launchAndRead(t, o)
	if res.Generations != 2 || len(res.Failures) != 1 {
		t.Fatalf("generations = %d, failures = %d, want 2 and 1", res.Generations, len(res.Failures))
	}
	f := res.Failures[0]
	if f.Proc != 1 || f.WorldSize != 4 || f.Rank/2 != 1 {
		t.Fatalf("failure record %+v, want a rank of proc 1 on a 4-rank world", f)
	}
	if len(res.Ranks) != 2 || res.Ranks[0].Rank != 0 || res.Ranks[1].Rank != 1 {
		t.Fatalf("survivors = %+v, want ranks 0 and 1", res.Ranks)
	}
	if res.Ranks[0].WeightsChecksum != res.Ranks[1].WeightsChecksum {
		t.Fatal("survivors diverged after elastic recovery")
	}
	if res.Ranks[0].ResumedFromEpoch < 0 {
		t.Fatalf("generation 1 started fresh (resumed epoch %d), want a checkpoint resume", res.Ranks[0].ResumedFromEpoch)
	}
}

// TestLaunchInjectFaultElastic: the scripted in-process kill (the same
// -inject-fault candle-run takes) also drives the launcher's elastic
// loop — the fault fires inside the worker hosting the rank, crosses
// the socket links, and the next generation drops that proc.
func TestLaunchInjectFaultElastic(t *testing.T) {
	o := smokeOpts(t)
	o.CkptDir = t.TempDir()
	o.Fault = "3@8"
	o.Elastic = true
	res := launchAndRead(t, o)
	if res.Generations != 2 || len(res.Failures) != 1 || res.Failures[0].Rank != 3 {
		t.Fatalf("generations = %d, failures = %+v, want gen 2 after rank 3 died", res.Generations, res.Failures)
	}
	if len(res.Ranks) != 2 {
		t.Fatalf("survivors = %d ranks, want 2", len(res.Ranks))
	}
}

// TestLaunchSigtermDrains: SIGTERM mid-rendezvous kills the workers
// and returns promptly instead of hanging on the round.
func TestLaunchSigtermDrains(t *testing.T) {
	o := smokeOpts(t)
	o.Epochs = 400 // long enough that the signal lands mid-run
	stop := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		close(stop)
	}()
	done := make(chan error, 1)
	var out bytes.Buffer
	go func() { done <- runMain(o, &out, os.Stderr, stop) }()
	select {
	case err := <-done:
		if err == nil || !strings.Contains(err.Error(), "terminated") {
			t.Fatalf("terminated launch returned %v", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("launcher did not drain after stop signal")
	}
}

// TestLaunchArgValidation covers the flag combinations runMain rejects
// before spawning anything.
func TestLaunchArgValidation(t *testing.T) {
	o := smokeOpts(t)
	o.Ranks = 3
	if err := runMain(o, os.Stdout, os.Stderr, make(chan struct{})); err == nil {
		t.Error("3 ranks over 2 procs accepted")
	}
	o = smokeOpts(t)
	o.Transport = "inproc"
	if err := runMain(o, os.Stdout, os.Stderr, make(chan struct{})); err == nil {
		t.Error("inproc transport accepted for multi-process launch")
	}
	o = smokeOpts(t)
	o.ChaosKill = 5
	if err := runMain(o, os.Stdout, os.Stderr, make(chan struct{})); err == nil {
		t.Error("chaos-kill outside the proc range accepted")
	}
	o = smokeOpts(t)
	o.Bench = "NT99"
	if err := runMain(o, os.Stdout, os.Stderr, make(chan struct{})); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
