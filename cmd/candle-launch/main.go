// candle-launch runs one CANDLE benchmark across several OS processes:
// it serves the rendezvous round, spawns N workers (re-executions of
// itself) that each host a contiguous slice of the world's ranks, and
// aggregates their results. With -elastic, a worker lost to a rank
// failure — or to a plain SIGKILL of its process — costs its ranks:
// the survivors are respawned as the next world generation, resuming
// from the checkpoint directory.
//
// Examples:
//
//	candle-launch -bench NT3 -procs 2 -ranks 4 -epochs 16
//	candle-launch -bench NT3 -procs 2 -ranks 4 -transport tcp -elastic \
//	    -checkpoint-dir /tmp/ckpt -inject-fault 3@8
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"os/signal"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"candle/internal/candle"
	"candle/internal/launch"
	"candle/internal/mpi"
)

// workerEnvConfig carries the JSON worker config into re-executed
// worker processes; its presence selects the worker role.
const workerEnvConfig = "CANDLE_LAUNCH_CONFIG"

// workerEnvExec overrides the executable spawned for workers; tests
// point it at the test binary, whose TestMain dispatches to workerMain.
const workerEnvExec = "CANDLE_LAUNCH_WORKER_EXEC"

// exitRankFailed is the worker exit code for a typed rank failure —
// the launcher's signal that elastic recovery applies (EX_TEMPFAIL).
const exitRankFailed = 75

func main() {
	if cfg := os.Getenv(workerEnvConfig); cfg != "" {
		os.Exit(workerMain(cfg, os.Stdout, os.Stderr))
	}
	opts := parseFlags(os.Args[1:], os.Stderr)
	stop := make(chan struct{})
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM, os.Interrupt)
	go func() {
		<-sig
		close(stop)
	}()
	if err := runMain(opts, os.Stdout, os.Stderr, stop); err != nil {
		fmt.Fprintln(os.Stderr, "candle-launch:", err)
		os.Exit(1)
	}
}

// options is the launcher's parsed command line.
type options struct {
	Bench      string
	SampleDiv  int
	FeatureDiv int
	Procs      int
	Ranks      int
	Epochs     int
	Batch      int
	LR         float64
	Seed       int64
	Loader     string
	Transport  string
	DataDir    string
	CkptDir    string
	Elastic    bool
	Fault      string
	ChaosKill  int
	Out        string
	Timeout    time.Duration
}

func parseFlags(args []string, stderr io.Writer) options {
	fs := flag.NewFlagSet("candle-launch", flag.ExitOnError)
	fs.SetOutput(stderr)
	var o options
	fs.StringVar(&o.Bench, "bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
	fs.IntVar(&o.SampleDiv, "sample-div", candle.DefaultSampleDiv, "dataset sample divisor (1 = the paper's full shape)")
	fs.IntVar(&o.FeatureDiv, "feature-div", candle.DefaultFeatureDiv, "dataset feature divisor (1 = the paper's full shape)")
	fs.IntVar(&o.Procs, "procs", 2, "worker processes to spawn")
	fs.IntVar(&o.Ranks, "ranks", 4, "total ranks across all processes (must divide evenly)")
	fs.IntVar(&o.Epochs, "epochs", 16, "total epochs (strong scaling)")
	fs.IntVar(&o.Batch, "batch", 0, "batch size; 0 = benchmark default")
	fs.Float64Var(&o.LR, "lr", 0, "learning rate; 0 = benchmark default")
	fs.Int64Var(&o.Seed, "seed", 42, "data/init seed")
	fs.StringVar(&o.Loader, "loader", "naive", "data engine (csvio registry name)")
	fs.StringVar(&o.Transport, "transport", "unix", "cross-process link transport: unix or tcp")
	fs.StringVar(&o.DataDir, "data-dir", "", "shared CSV directory; empty = temp dir")
	fs.StringVar(&o.CkptDir, "checkpoint-dir", "", "checkpoint directory; elastic generations resume from it")
	fs.BoolVar(&o.Elastic, "elastic", false, "respawn survivors as a new generation when a process or rank dies")
	fs.StringVar(&o.Fault, "inject-fault", "", "kill a rank at a collective step, as rank@step (first generation only)")
	fs.IntVar(&o.ChaosKill, "chaos-kill", -1, "SIGKILL this worker process once the first checkpoint lands (-1 = off)")
	fs.StringVar(&o.Out, "out", "", "write the aggregated result JSON here")
	fs.DurationVar(&o.Timeout, "timeout", 5*time.Minute, "per-generation deadline")
	fs.Parse(args)
	return o
}

// workerConfig is the contract between launcher and worker, shipped as
// JSON through the environment.
type workerConfig struct {
	Bench      string  `json:"bench"`
	SampleDiv  int     `json:"sample_div"`
	FeatureDiv int     `json:"feature_div"`
	DataDir    string  `json:"data_dir"`
	CkptDir    string  `json:"ckpt_dir,omitempty"`
	Seed       int64   `json:"seed"`
	Epochs     int     `json:"epochs"`
	Batch      int     `json:"batch,omitempty"`
	LR         float64 `json:"lr,omitempty"`
	Loader     string  `json:"loader"`
	Transport  string  `json:"transport"`
	Rendezvous string  `json:"rendezvous"`
	Network    string  `json:"network"`
	WorldRanks int     `json:"world_ranks"`
	LocalRanks int     `json:"local_ranks"`
	Proc       int     `json:"proc"`
	Gen        int     `json:"gen"`
	Fault      string  `json:"fault,omitempty"`
	ResultPath string  `json:"result_path"`
}

// rankSummary is one rank's result as reported across the process
// boundary.
type rankSummary struct {
	Rank             int     `json:"rank"`
	Epochs           int     `json:"epochs"`
	FinalLoss        float64 `json:"final_loss"`
	TrainAccuracy    float64 `json:"train_accuracy"`
	TestAccuracy     float64 `json:"test_accuracy"`
	WeightsChecksum  float64 `json:"weights_checksum"`
	AllreduceCalls   int     `json:"allreduce_calls"`
	ResumedFromEpoch int     `json:"resumed_from_epoch"`
}

// workerResult is what a worker writes to its result file before
// exiting; on a rank failure only the failure fields are populated.
type workerResult struct {
	Proc       int           `json:"proc"`
	Gen        int           `json:"gen"`
	Ranks      []rankSummary `json:"ranks,omitempty"`
	FailedRank int           `json:"failed_rank"`
	FailedOp   string        `json:"failed_op,omitempty"`
	Err        string        `json:"err,omitempty"`
}

// workerMain is the re-executed worker role: join the rendezvous named
// in the env config, run the local rank slice, report through the
// result file and the exit code.
func workerMain(cfgJSON string, stdout, stderr io.Writer) int {
	var wc workerConfig
	if err := json.Unmarshal([]byte(cfgJSON), &wc); err != nil {
		fmt.Fprintln(stderr, "candle-launch worker: bad config:", err)
		return 1
	}
	res := workerResult{Proc: wc.Proc, Gen: wc.Gen, FailedRank: -1}
	code := 0
	if err := runWorker(wc, &res); err != nil {
		res.Err = err.Error()
		var rf *mpi.RankFailedError
		if errors.As(err, &rf) {
			res.FailedRank, res.FailedOp = rf.Rank, rf.Op
			code = exitRankFailed
		} else {
			code = 1
		}
		fmt.Fprintf(stderr, "candle-launch worker %d (gen %d): %v\n", wc.Proc, wc.Gen, err)
	}
	if wc.ResultPath != "" {
		b, _ := json.Marshal(res)
		if err := os.WriteFile(wc.ResultPath, b, 0o644); err != nil {
			fmt.Fprintln(stderr, "candle-launch worker: result write:", err)
			if code == 0 {
				code = 1
			}
		}
	}
	return code
}

func runWorker(wc workerConfig, res *workerResult) error {
	b, err := candle.Scaled(wc.Bench, wc.SampleDiv, wc.FeatureDiv)
	if err != nil {
		return err
	}
	var faults *mpi.FaultPlan
	if wc.Fault != "" {
		if faults, err = parseFault(wc.Fault); err != nil {
			return err
		}
	}
	cfg := candle.RunConfig{
		Ranks: wc.WorldRanks, TotalEpochs: wc.Epochs, Batch: wc.Batch, LR: wc.LR,
		Engine: wc.Loader, DataDir: wc.DataDir, Seed: wc.Seed,
		CheckpointDir: wc.CkptDir, CheckpointEvery: 1,
		Resume: wc.CkptDir != "" && wc.Gen > 0,
		Faults: faults,
		Transport: wc.Transport, Rendezvous: wc.Rendezvous, RendezvousNetwork: wc.Network,
		LocalRanks: wc.LocalRanks, ProcIndex: wc.Proc, Generation: wc.Gen,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}
	out, err := b.Run(cfg)
	if err != nil {
		return err
	}
	for _, r := range out.Ranks {
		res.Ranks = append(res.Ranks, rankSummary{
			Rank: r.Rank, Epochs: r.Epochs,
			FinalLoss: r.FinalLoss, TrainAccuracy: r.TrainAccuracy, TestAccuracy: r.TestAccuracy,
			WeightsChecksum: r.WeightsChecksum, AllreduceCalls: r.AllreduceCalls,
			ResumedFromEpoch: r.ResumedFromEpoch,
		})
	}
	return nil
}

// parseFault parses "rank@step" into a kill plan (candle-run syntax).
func parseFault(s string) (*mpi.FaultPlan, error) {
	at := strings.SplitN(s, "@", 2)
	if len(at) != 2 {
		return nil, fmt.Errorf("bad -inject-fault %q, want rank@step", s)
	}
	rank, err := strconv.Atoi(at[0])
	if err != nil || rank < 0 {
		return nil, fmt.Errorf("bad -inject-fault rank %q", at[0])
	}
	step, err := strconv.Atoi(at[1])
	if err != nil || step < 0 {
		return nil, fmt.Errorf("bad -inject-fault step %q", at[1])
	}
	return mpi.NewFaultPlan().KillAt(rank, step), nil
}

// launchResult is the aggregated run the launcher prints and writes.
type launchResult struct {
	Bench       string        `json:"bench"`
	WorldRanks  int           `json:"world_ranks"`
	Procs       int           `json:"procs"`
	Transport   string        `json:"transport"`
	Generations int           `json:"generations"`
	Failures    []failureInfo `json:"failures,omitempty"`
	Ranks       []rankSummary `json:"ranks"`
}

type failureInfo struct {
	Rank      int    `json:"rank"`
	Proc      int    `json:"proc"`
	WorldSize int    `json:"world_size"`
	Op        string `json:"op,omitempty"`
}

func runMain(o options, stdout, stderr io.Writer, stop <-chan struct{}) error {
	if o.Procs <= 0 || o.Ranks <= 0 || o.Ranks%o.Procs != 0 {
		return fmt.Errorf("%d ranks do not divide evenly over %d procs", o.Ranks, o.Procs)
	}
	if o.Transport != "unix" && o.Transport != "tcp" {
		return fmt.Errorf("transport %q: multi-process launch needs unix or tcp", o.Transport)
	}
	if o.ChaosKill >= o.Procs {
		return fmt.Errorf("chaos-kill proc %d outside [0,%d)", o.ChaosKill, o.Procs)
	}
	b, err := candle.Scaled(o.Bench, o.SampleDiv, o.FeatureDiv)
	if err != nil {
		return err
	}
	if o.DataDir == "" {
		dir, err := os.MkdirTemp("", "candle-launch-data-")
		if err != nil {
			return err
		}
		defer os.RemoveAll(dir)
		o.DataDir = dir
	}
	// The launcher prepares the shared dataset once; workers only read.
	if _, _, err := b.PrepareData(o.DataDir, o.Seed); err != nil {
		return err
	}
	exe := os.Getenv(workerEnvExec)
	if exe == "" {
		if exe, err = os.Executable(); err != nil {
			return err
		}
	}
	scratch, err := os.MkdirTemp("", "candle-launch-res-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(scratch)

	ranksPerProc := o.Ranks / o.Procs
	network := "unix"
	if o.Transport == "tcp" {
		network = "tcp"
	}
	// alive maps generation proc indices to original proc identities.
	alive := make([]int, o.Procs)
	for i := range alive {
		alive[i] = i
	}
	gen := 0
	var failures []failureInfo
	for {
		world := len(alive) * ranksPerProc
		results, killedRank, err := runGeneration(o, b, exe, scratch, network, alive, world, ranksPerProc, gen, stdout, stderr, stop)
		if err == nil {
			sort.Slice(results, func(i, j int) bool { return results[i].Rank < results[j].Rank })
			return report(o, results, gen+1, failures, stdout)
		}
		if !o.Elastic || killedRank < 0 {
			return err
		}
		pos := killedRank / ranksPerProc
		if pos >= len(alive) {
			return fmt.Errorf("failed rank %d outside the %d-rank world: %w", killedRank, world, err)
		}
		fmt.Fprintf(stdout, "generation %d: rank %d (proc %d) failed; respawning %d survivors\n",
			gen, killedRank, alive[pos], len(alive)-1)
		failures = append(failures, failureInfo{Rank: killedRank, Proc: alive[pos], WorldSize: world})
		alive = append(alive[:pos:pos], alive[pos+1:]...)
		gen++
		if len(alive) == 0 {
			return fmt.Errorf("elastic recovery exhausted all procs: %w", err)
		}
		// Scripted faults were consumed by the dead generation; chaos
		// strikes only once.
		o.Fault = ""
		o.ChaosKill = -1
	}
}

// runGeneration serves one rendezvous round and shepherds one set of
// worker processes through it. On a rank failure it returns the failed
// rank (≥0) so the elastic loop can drop the hosting proc.
func runGeneration(o options, b *candle.Benchmark, exe, scratch, network string, alive []int, world, ranksPerProc, gen int, stdout, stderr io.Writer, stop <-chan struct{}) ([]rankSummary, int, error) {
	srv, err := launch.Serve(launch.ServerConfig{Network: network, Procs: len(alive), Gen: gen, Timeout: o.Timeout})
	if err != nil {
		return nil, -1, err
	}
	defer srv.Close()

	type done struct {
		proc int
		err  error
	}
	cmds := make([]*exec.Cmd, len(alive))
	resPaths := make([]string, len(alive))
	doneCh := make(chan done, len(alive))
	for p := range alive {
		resPaths[p] = filepath.Join(scratch, fmt.Sprintf("gen%d-proc%d.json", gen, p))
		wc := workerConfig{
			Bench: o.Bench, SampleDiv: o.SampleDiv, FeatureDiv: o.FeatureDiv,
			DataDir: o.DataDir, CkptDir: o.CkptDir,
			Seed: o.Seed, Epochs: o.Epochs, Batch: o.Batch, LR: o.LR, Loader: o.Loader,
			Transport: o.Transport, Rendezvous: srv.Addr(), Network: network,
			WorldRanks: world, LocalRanks: ranksPerProc, Proc: p, Gen: gen,
			Fault: o.Fault, ResultPath: resPaths[p],
		}
		cfgJSON, err := json.Marshal(wc)
		if err != nil {
			return nil, -1, err
		}
		cmd := exec.Command(exe)
		cmd.Env = append(os.Environ(), workerEnvConfig+"="+string(cfgJSON))
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Start(); err != nil {
			for _, c := range cmds[:p] {
				if c != nil {
					c.Process.Kill()
				}
			}
			return nil, -1, fmt.Errorf("spawn worker %d: %w", p, err)
		}
		cmds[p] = cmd
		go func(p int, cmd *exec.Cmd) { doneCh <- done{p, cmd.Wait()} }(p, cmd)
	}

	if o.ChaosKill >= 0 && o.ChaosKill < len(alive) {
		go chaosKill(cmds[o.ChaosKill], o.CkptDir, stop)
	}

	// Collect every worker; remember the first rank failure.
	var firstErr error
	failedRank := -1
	for n := 0; n < len(alive); n++ {
		select {
		case d := <-doneCh:
			if d.err == nil {
				continue
			}
			var xe *exec.ExitError
			if errors.As(d.err, &xe) && xe.ExitCode() == exitRankFailed {
				if wr := readResult(resPaths[d.proc]); wr != nil && wr.FailedRank >= 0 && failedRank < 0 {
					failedRank = wr.FailedRank
					firstErr = fmt.Errorf("generation %d: rank %d failed in %s: %s", gen, wr.FailedRank, wr.FailedOp, wr.Err)
				}
				continue
			}
			// A process that died without reporting (SIGKILL chaos, OOM)
			// shows up through its survivors' peer-loss reports instead.
			if firstErr == nil {
				firstErr = fmt.Errorf("generation %d: worker %d: %w", gen, d.proc, d.err)
			}
		case <-stop:
			// SIGTERM: drain the rendezvous so joining workers unblock,
			// then put the generation down.
			srv.Close()
			for _, c := range cmds {
				if c != nil && c.Process != nil {
					c.Process.Kill()
				}
			}
			for ; n < len(alive); n++ {
				<-doneCh
			}
			return nil, -1, errors.New("terminated by signal during launch")
		}
	}
	if firstErr != nil {
		return nil, failedRank, firstErr
	}
	var all []rankSummary
	for p := range alive {
		wr := readResult(resPaths[p])
		if wr == nil {
			return nil, -1, fmt.Errorf("generation %d: worker %d exited clean but left no result", gen, p)
		}
		all = append(all, wr.Ranks...)
	}
	return all, -1, nil
}

// chaosKill SIGKILLs one worker process mid-run: once the first
// checkpoint lands when checkpointing is on (so elastic recovery has
// something to resume from), or after a short grace period otherwise.
func chaosKill(cmd *exec.Cmd, ckptDir string, stop <-chan struct{}) {
	deadline := time.Now().Add(2 * time.Minute)
	waited := time.Duration(0)
	for time.Now().Before(deadline) {
		select {
		case <-stop:
			return
		case <-time.After(5 * time.Millisecond):
			waited += 5 * time.Millisecond
		}
		if ckptDir == "" {
			// No checkpoint to watch: give the world time to form, then
			// strike mid-training.
			if waited >= 500*time.Millisecond {
				break
			}
			continue
		}
		if ents, err := os.ReadDir(ckptDir); err == nil && len(ents) > 0 {
			break
		}
	}
	if cmd.Process != nil {
		cmd.Process.Kill()
	}
}

func readResult(path string) *workerResult {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil
	}
	var wr workerResult
	if err := json.Unmarshal(b, &wr); err != nil {
		return nil
	}
	return &wr
}

func report(o options, ranks []rankSummary, gens int, failures []failureInfo, stdout io.Writer) error {
	res := launchResult{
		Bench: o.Bench, WorldRanks: o.Ranks, Procs: o.Procs, Transport: o.Transport,
		Generations: gens, Failures: failures, Ranks: ranks,
	}
	fmt.Fprintf(stdout, "%s: %d ranks over %d procs (%s), %d generation(s)\n",
		o.Bench, o.Ranks, o.Procs, o.Transport, gens)
	for _, f := range failures {
		fmt.Fprintf(stdout, "  rank %d (proc %d) lost from a %d-rank world\n", f.Rank, f.Proc, f.WorldSize)
	}
	if len(ranks) > 0 {
		r := ranks[0]
		fmt.Fprintf(stdout, "  root: %d epochs, loss %.4f, train acc %.3f, weights checksum %.6f\n",
			r.Epochs, r.FinalLoss, r.TrainAccuracy, r.WeightsChecksum)
	}
	if o.Out != "" {
		b, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(o.Out, append(b, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "  result -> %s\n", o.Out)
	}
	return nil
}
