// candle-report writes the full reproduction bundle — every table and
// figure of the paper as aligned text, per-artifact CSV, Chrome-trace
// timelines, and the Figure 7(a) power trace — into one directory.
// With -e2e it instead renders a measured BENCH_e2e.json as comparison
// tables: one per pilot, one row per configuration, with the
// time/energy-to-target race and the load/compute/collective split.
//
// Examples:
//
//	candle-report -o out/
//	candle-report -e2e BENCH_e2e.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"candle/internal/core"
	"candle/internal/e2ebench"
)

func main() {
	out := flag.String("o", "reproduction", "output directory")
	e2e := flag.String("e2e", "", "render a BENCH_e2e.json as comparison tables instead of writing the bundle")
	flag.Parse()
	if *e2e != "" {
		if err := renderE2E(os.Stdout, *e2e); err != nil {
			fmt.Fprintln(os.Stderr, "candle-report:", err)
			os.Exit(1)
		}
		return
	}
	n, err := core.WriteBundle(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "candle-report:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d artifact files to %s/\n", n, *out)
}

// renderE2E prints the measured e2e artifact as per-pilot tables.
func renderE2E(w io.Writer, path string) error {
	m, res, err := e2ebench.Load(path)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%s (%s, %s, seed %d)\n\n", path, res.Environment.CPU, res.Environment.Date, m.Seed)
	for _, t := range e2ebench.Tables(m) {
		fmt.Fprintln(w, t.String())
	}
	return nil
}
