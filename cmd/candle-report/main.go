// candle-report writes the full reproduction bundle — every table and
// figure of the paper as aligned text, per-artifact CSV, Chrome-trace
// timelines, and the Figure 7(a) power trace — into one directory.
//
// Example:
//
//	candle-report -o out/
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/core"
)

func main() {
	out := flag.String("o", "reproduction", "output directory")
	flag.Parse()
	n, err := core.WriteBundle(*out)
	if err != nil {
		fmt.Fprintln(os.Stderr, "candle-report:", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %d artifact files to %s/\n", n, *out)
}
