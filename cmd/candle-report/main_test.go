package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"candle/internal/core"
	"candle/internal/e2ebench"
)

func TestBundleViaCore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	n, err := core.WriteBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing written")
	}
	if _, err := os.Stat(filepath.Join(dir, "tables.txt")); err != nil {
		t.Fatal(err)
	}
}

func TestRenderE2E(t *testing.T) {
	m := &e2ebench.Metrics{Seed: 11, Pilots: []e2ebench.PilotResult{{
		Spec: e2ebench.PilotSpec{Name: "NT3", TotalEpochs: 16,
			TargetKind: e2ebench.TargetAccuracy, Target: 0.7},
		Configs: []e2ebench.ConfigResult{{
			Config:        e2ebench.Config{Engine: "parallel", Ranks: 2, Batch: 7, DType: "f64"},
			ReachedTarget: true, TimeToTargetS: 1.25, EnergyToTargetJ: 120,
			TotalS: 3, LoadS: 0.4, ComputeS: 2.2, CollectiveS: 0.3, FinalTestAcc: 0.9,
		}},
	}}}
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := e2ebench.Write(path, m, "report test fixture"); err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := renderE2E(&b, path); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{"e2e-NT3", "parallel", "1.250s", "hit", "seed 11"} {
		if !strings.Contains(out, want) {
			t.Fatalf("render missing %q:\n%s", want, out)
		}
	}
	// Schema-checked load: a wrong file errors.
	if err := renderE2E(&b, path+".missing"); err == nil {
		t.Fatal("missing file accepted")
	}
}
