package main

import (
	"os"
	"path/filepath"
	"testing"

	"candle/internal/core"
)

func TestBundleViaCore(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out")
	n, err := core.WriteBundle(dir)
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("nothing written")
	}
	if _, err := os.Stat(filepath.Join(dir, "tables.txt")); err != nil {
		t.Fatal(err)
	}
}
