// candle-fleet runs a replicated serving fleet on one command line: it
// spawns N replica processes (re-executions of itself, each hosting a
// candle-serve engine), fronts them with the internal/fleet router,
// and keeps the fleet coherent — health probes drain dead replicas
// around live traffic, a respawned replica re-registers into its old
// slot, and checkpoint hot-reloads commit fleet-wide in one atomic
// generation bump (no client ever sees the fleet half-upgraded).
//
// Clients talk to the router exactly as they would to one
// candle-serve: POST /predict, GET /healthz, GET /metrics.
//
// Examples:
//
//	candle-fleet -bench NT3 -dir ./ckpt -replicas 3 -addr :8080
//	candle-fleet -bench NT3 -dir ./ckpt -replicas 2 -bootstrap
//	candle-fleet -bench NT3 -dir ./ckpt -slo-p99 25ms   # adaptive batching
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/exec"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"candle/internal/candle"
	"candle/internal/checkpoint"
	"candle/internal/fleet"
	"candle/internal/nn"
	"candle/internal/serve"
)

// replicaEnvConfig carries the JSON replica config into re-executed
// replica processes; its presence selects the replica role.
const replicaEnvConfig = "CANDLE_FLEET_CONFIG"

// replicaEnvExec overrides the executable spawned for replicas; tests
// point it at the test binary, whose TestMain dispatches to
// replicaMain.
const replicaEnvExec = "CANDLE_FLEET_REPLICA_EXEC"

// options carries the parsed router-role flags.
type options struct {
	bench, dir            string
	addr, ctlAddr         string
	replicas              int
	sampleDiv, featureDiv int
	dtype                 string
	maxBatch              int
	maxWait               time.Duration
	queue                 int
	sloP99                time.Duration
	reloadEvery           time.Duration
	healthEvery           time.Duration
	respawn               bool
	bootstrap             bool
	bootstrapEpochs       int
}

// replicaConfig is the JSON handed to a re-executed replica process.
type replicaConfig struct {
	ID         string        `json:"id"`
	Bench      string        `json:"bench"`
	SampleDiv  int           `json:"sample_div"`
	FeatureDiv int           `json:"feature_div"`
	Dtype      string        `json:"dtype,omitempty"`
	Dir        string        `json:"dir"`
	CtlAddr    string        `json:"ctl_addr"`
	MaxBatch   int           `json:"max_batch"`
	MaxWait    time.Duration `json:"max_wait"`
	Queue      int           `json:"queue"`
	SLOP99     time.Duration `json:"slo_p99"`
}

func main() {
	if cfg := os.Getenv(replicaEnvConfig); cfg != "" {
		os.Exit(replicaMain(cfg))
	}
	var o options
	flag.StringVar(&o.bench, "bench", "NT3", "benchmark the checkpoints were trained on: NT3, P1B1, P1B2, P1B3")
	flag.StringVar(&o.dir, "dir", "", "checkpoint directory all replicas load from (required)")
	flag.StringVar(&o.addr, "addr", ":8080", "router HTTP listen address (clients connect here)")
	flag.StringVar(&o.ctlAddr, "ctl-addr", "127.0.0.1:0", "control-plane listen address replicas register on")
	flag.IntVar(&o.replicas, "replicas", 2, "replica processes to spawn")
	flag.IntVar(&o.sampleDiv, "sample-div", 20, "dataset sample divisor the model was trained at (1 = paper scale)")
	flag.IntVar(&o.featureDiv, "feature-div", 1200, "feature divisor the model was trained at (1 = paper scale)")
	flag.StringVar(&o.dtype, "dtype", "", "serving precision: f32, f64, or empty to follow the checkpoint's dtype")
	flag.IntVar(&o.maxBatch, "max-batch", 32, "per-replica max requests coalesced into one forward")
	flag.DurationVar(&o.maxWait, "max-wait", 2*time.Millisecond, "per-replica max wait for batch stragglers")
	flag.IntVar(&o.queue, "queue", 256, "per-replica admission queue depth")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "per-replica p99 latency target; enables the adaptive batching controller")
	flag.DurationVar(&o.reloadEvery, "reload-every", 2*time.Second, "coordinated checkpoint reload cadence (negative: only via POST /fleet/reload)")
	flag.DurationVar(&o.healthEvery, "health-every", 200*time.Millisecond, "per-replica health probe cadence")
	flag.BoolVar(&o.respawn, "respawn", true, "restart a replica process that dies; it re-registers into its old slot")
	flag.BoolVar(&o.bootstrap, "bootstrap", false, "if -dir has no checkpoint, train briefly and write one first")
	flag.IntVar(&o.bootstrapEpochs, "bootstrap-epochs", 4, "epochs for -bootstrap training")
	flag.Parse()
	if err := run(o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "candle-fleet:", err)
		os.Exit(1)
	}
}

// fleetAddrs is what run reports once both listeners are up; tests
// use it to find the ports.
type fleetAddrs struct {
	HTTP, Ctl net.Addr
}

// run is the router role: bootstrap if asked, start the router's
// control and HTTP listeners, spawn and supervise the replica
// processes, and drain everything on SIGINT/SIGTERM.
func run(o options, ready chan<- fleetAddrs) error {
	if o.dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if o.replicas < 1 {
		return fmt.Errorf("-replicas must be >= 1, got %d", o.replicas)
	}
	b, err := candle.Scaled(o.bench, o.sampleDiv, o.featureDiv)
	if err != nil {
		return err
	}
	if o.bootstrap {
		if err := bootstrap(b, o); err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
	}
	if _, err := checkpoint.Latest(o.dir, b.Spec.Name); err != nil {
		return fmt.Errorf("no servable checkpoint in %s (train first, or pass -bootstrap): %w", o.dir, err)
	}

	r := fleet.NewRouter(fleet.Config{
		HealthEvery: o.healthEvery,
		ReloadEvery: o.reloadEvery,
	})
	ctlLn, err := net.Listen("tcp", o.ctlAddr)
	if err != nil {
		return fmt.Errorf("control listener: %w", err)
	}
	httpLn, err := net.Listen("tcp", o.addr)
	if err != nil {
		ctlLn.Close()
		return fmt.Errorf("http listener: %w", err)
	}
	go func() { _ = r.ServeControl(ctlLn) }()
	errc := make(chan error, 1)
	go func() { errc <- r.Serve(httpLn) }()
	log.Printf("router up: clients %s, replica control plane %s", httpLn.Addr(), ctlLn.Addr())

	sup := &supervisor{o: o, ctlAddr: ctlLn.Addr().String(), stopc: make(chan struct{})}
	if err := sup.start(); err != nil {
		sup.stop()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
		return err
	}
	// Install the handler before announcing readiness, so a SIGTERM
	// arriving the instant we look ready still drains gracefully.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	if ready != nil {
		ready <- fleetAddrs{HTTP: httpLn.Addr(), Ctl: ctlLn.Addr()}
	}
	select {
	case err := <-errc:
		sup.stop()
		return err
	case sig := <-sigc:
		log.Printf("%s: draining fleet (replicas finish admitted requests)", sig)
		sup.stop()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := r.Shutdown(ctx); err != nil {
			return err
		}
		log.Printf("fleet drained, exiting")
		return <-errc
	}
}

// supervisor spawns the replica processes and, when -respawn is on,
// restarts any that die — the restarted process re-registers under
// its old ID, replacing its drained slot in the router.
type supervisor struct {
	o       options
	ctlAddr string

	mu      sync.Mutex
	procs   map[string]*exec.Cmd
	stopped bool
	stopc   chan struct{}
	wg      sync.WaitGroup
}

func (s *supervisor) start() error {
	exe := os.Getenv(replicaEnvExec)
	if exe == "" {
		var err error
		if exe, err = os.Executable(); err != nil {
			return err
		}
	}
	s.procs = make(map[string]*exec.Cmd, s.o.replicas)
	for i := 0; i < s.o.replicas; i++ {
		if err := s.spawn(exe, fmt.Sprintf("r%d", i)); err != nil {
			return err
		}
	}
	return nil
}

func (s *supervisor) spawn(exe, id string) error {
	rc := replicaConfig{
		ID: id, Bench: s.o.bench,
		SampleDiv: s.o.sampleDiv, FeatureDiv: s.o.featureDiv,
		Dtype: s.o.dtype, Dir: s.o.dir, CtlAddr: s.ctlAddr,
		MaxBatch: s.o.maxBatch, MaxWait: s.o.maxWait,
		Queue: s.o.queue, SLOP99: s.o.sloP99,
	}
	cfgJSON, err := json.Marshal(rc)
	if err != nil {
		return err
	}
	cmd := exec.Command(exe)
	cmd.Env = append(os.Environ(), replicaEnvConfig+"="+string(cfgJSON))
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("spawn replica %s: %w", id, err)
	}
	s.mu.Lock()
	s.procs[id] = cmd
	s.mu.Unlock()
	log.Printf("replica %s: pid %d", id, cmd.Process.Pid)
	s.wg.Add(1)
	go s.reap(exe, id, cmd)
	return nil
}

func (s *supervisor) reap(exe, id string, cmd *exec.Cmd) {
	defer s.wg.Done()
	err := cmd.Wait()
	s.mu.Lock()
	stopped := s.stopped
	s.mu.Unlock()
	if stopped {
		return
	}
	log.Printf("replica %s (pid %d) exited: %v", id, cmd.Process.Pid, err)
	if !s.o.respawn {
		return
	}
	select {
	case <-s.stopc:
		return
	case <-time.After(500 * time.Millisecond):
	}
	s.mu.Lock()
	stopped = s.stopped
	s.mu.Unlock()
	if stopped {
		return
	}
	log.Printf("replica %s: respawning", id)
	if err := s.spawn(exe, id); err != nil {
		log.Printf("replica %s: respawn failed: %v", id, err)
	}
}

// stop SIGTERMs every replica (graceful drain) and waits for them.
func (s *supervisor) stop() {
	s.mu.Lock()
	s.stopped = true
	procs := make([]*exec.Cmd, 0, len(s.procs))
	for _, cmd := range s.procs {
		procs = append(procs, cmd)
	}
	s.mu.Unlock()
	close(s.stopc)
	for _, cmd := range procs {
		if cmd.Process != nil {
			_ = cmd.Process.Signal(syscall.SIGTERM)
		}
	}
	s.wg.Wait()
}

// replicaMain is the re-executed replica role: run one serve engine,
// register with the router's control plane, serve until SIGTERM,
// drain. Fleet-coordinated reloads arrive via the staged-reload HTTP
// endpoints, so the engine's own reload poller stays off.
func replicaMain(cfgJSON string) int {
	var rc replicaConfig
	if err := json.Unmarshal([]byte(cfgJSON), &rc); err != nil {
		log.Printf("replica: bad %s: %v", replicaEnvConfig, err)
		return 2
	}
	log.SetPrefix("[" + rc.ID + "] ")
	b, err := candle.Scaled(rc.Bench, rc.SampleDiv, rc.FeatureDiv)
	if err != nil {
		log.Print(err)
		return 1
	}
	s, err := serve.New(serve.Config{
		Benchmark:    b.Spec.Name,
		Dir:          rc.Dir,
		Factory:      func() *nn.Sequential { return b.Build(b.Spec) },
		Loss:         b.Loss,
		InputDim:     b.Spec.Features,
		DType:        rc.Dtype,
		MaxBatch:     rc.MaxBatch,
		MaxWait:      rc.MaxWait,
		Replicas:     1, // process-level replication; the fleet is the pool
		QueueDepth:   rc.Queue,
		ReloadEvery:  -1, // the router coordinates reloads fleet-wide
		SLOTargetP99: rc.SLOP99,
	})
	if err != nil {
		log.Print(err)
		return 1
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Print(err)
		return 1
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()

	epoch, step := s.Generation()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	assign, err := fleet.Register(ctx, "tcp", rc.CtlAddr, rc.ID, ln.Addr().String(), epoch, step)
	cancel()
	if err != nil {
		log.Printf("registration rejected: %v", err)
		return 1
	}
	log.Printf("serving %s epoch %d step %d on %s (fleet at epoch %d)",
		b.Spec.Name, epoch, step, ln.Addr(), assign.Epoch)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	select {
	case err := <-errc:
		if err != nil {
			log.Print(err)
			return 1
		}
		return 0
	case <-sigc:
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			log.Print(err)
			return 1
		}
		<-errc
		return 0
	}
}

// bootstrap trains the benchmark briefly and writes checkpoints into
// o.dir, so a fresh directory becomes servable without a separate
// training run. A directory that already has a loadable checkpoint is
// left alone.
func bootstrap(b *candle.Benchmark, o options) error {
	if _, err := checkpoint.Latest(o.dir, b.Spec.Name); err == nil {
		return nil
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	dataDir, err := os.MkdirTemp("", "candle-fleet-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	if _, _, err := b.PrepareData(dataDir, 7); err != nil {
		return err
	}
	log.Printf("bootstrap: training %s for %d epochs -> %s", b.Spec.Name, o.bootstrapEpochs, o.dir)
	_, err = b.Run(candle.RunConfig{
		Ranks:           1,
		TotalEpochs:     o.bootstrapEpochs,
		Batch:           7,
		DType:           o.dtype,
		LR:              0.05, // scaled datasets want a larger step than Table 1's
		Engine:          "chunked",
		DataDir:         dataDir,
		Seed:            7,
		CheckpointDir:   o.dir,
		CheckpointEvery: 1,
	})
	return err
}
