package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"candle/internal/candle"
)

// TestMain lets the test binary play the replica role: the supervisor
// spawns os.Args[0] (via CANDLE_FLEET_REPLICA_EXEC) and this dispatch
// routes those children into replicaMain instead of the test runner.
func TestMain(m *testing.M) {
	if cfg := os.Getenv(replicaEnvConfig); cfg != "" {
		os.Exit(replicaMain(cfg))
	}
	os.Exit(m.Run())
}

func testFleetOptions(t *testing.T) options {
	return options{
		bench:           "NT3",
		dir:             t.TempDir(),
		addr:            "127.0.0.1:0",
		ctlAddr:         "127.0.0.1:0",
		replicas:        2,
		sampleDiv:       40,
		featureDiv:      4000,
		maxBatch:        8,
		maxWait:         time.Millisecond,
		queue:           64,
		reloadEvery:     -1, // reload only via POST /fleet/reload
		healthEvery:     50 * time.Millisecond,
		respawn:         true,
		bootstrap:       true,
		bootstrapEpochs: 1,
	}
}

type fleetHealthView struct {
	Status  string `json:"status"`
	Members []struct {
		ID      string `json:"id"`
		Pid     int    `json:"pid"`
		Healthy bool   `json:"healthy"`
	} `json:"members"`
}

func fetchFleetHealth(t *testing.T, base string) (fleetHealthView, bool) {
	t.Helper()
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return fleetHealthView{}, false
	}
	defer resp.Body.Close()
	var h fleetHealthView
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		return fleetHealthView{}, false
	}
	return h, true
}

func waitFleet(t *testing.T, base, what string, timeout time.Duration, cond func(fleetHealthView) bool) fleetHealthView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if h, ok := fetchFleetHealth(t, base); ok && cond(h) {
			return h
		}
		time.Sleep(25 * time.Millisecond)
	}
	h, _ := fetchFleetHealth(t, base)
	t.Fatalf("timed out waiting for %s; last healthz: %+v", what, h)
	return fleetHealthView{}
}

func healthyCount(h fleetHealthView) int {
	n := 0
	for _, m := range h.Members {
		if m.Healthy {
			n++
		}
	}
	return n
}

// TestFleetSmoke is the whole arc with real processes: bootstrap
// training, two spawned replica processes registering over the
// control plane, live traffic, a real SIGKILL of one replica under
// load (the router drains around it — zero failed admitted requests),
// the supervisor respawning it back into its slot, and a graceful
// SIGTERM drain of the whole fleet. `make fleet-smoke` runs this.
func TestFleetSmoke(t *testing.T) {
	t.Setenv(replicaEnvExec, os.Args[0])
	o := testFleetOptions(t)
	ready := make(chan fleetAddrs, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(o, ready) }()

	var addrs fleetAddrs
	select {
	case addrs = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before ready: %v", err)
	case <-time.After(120 * time.Second):
		t.Fatal("fleet never became ready")
	}
	base := "http://" + addrs.HTTP.String()

	// Both replica processes register and come up healthy.
	waitFleet(t, base, "2 healthy replicas", 60*time.Second, func(h fleetHealthView) bool {
		return h.Status == "ok" && healthyCount(h) == 2
	})

	// Live traffic for the rest of the test.
	b, err := candle.Scaled(o.bench, o.sampleDiv, o.featureDiv)
	if err != nil {
		t.Fatal(err)
	}
	features, _ := json.Marshal(make([]float64, b.Spec.Features))
	body := fmt.Sprintf(`{"features":%s}`, features)
	stop := make(chan struct{})
	var mu sync.Mutex
	statuses := map[int]int{}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Post(base+"/predict", "application/json", strings.NewReader(body))
				mu.Lock()
				if err != nil {
					statuses[-1]++
				} else {
					resp.Body.Close()
					statuses[resp.StatusCode]++
				}
				mu.Unlock()
			}
		}()
	}

	// SIGKILL one replica process mid-load: no drain, no goodbye.
	h, ok := fetchFleetHealth(t, base)
	if !ok || len(h.Members) == 0 {
		t.Fatal("no members to kill")
	}
	victim := h.Members[0]
	if victim.Pid <= 0 {
		t.Fatalf("member %s has no pid", victim.ID)
	}
	if err := syscall.Kill(victim.Pid, syscall.SIGKILL); err != nil {
		t.Fatal(err)
	}

	// The router drains the corpse around live traffic...
	waitFleet(t, base, "victim drained", 30*time.Second, func(h fleetHealthView) bool {
		return healthyCount(h) < 2
	})
	// ...and the supervisor respawns it back into its old slot.
	waitFleet(t, base, "victim respawned", 60*time.Second, func(h fleetHealthView) bool {
		return h.Status == "ok" && healthyCount(h) == 2
	})

	close(stop)
	wg.Wait()
	mu.Lock()
	failed := statuses[-1]
	for code, n := range statuses {
		if code >= 500 {
			failed += n
		}
	}
	served := statuses[http.StatusOK]
	mu.Unlock()
	if failed != 0 {
		t.Fatalf("%d admitted requests failed across the kill (statuses %v)", failed, statuses)
	}
	if served == 0 {
		t.Fatal("load loop recorded no successes")
	}
	t.Logf("kill survived: statuses %v", statuses)

	// SIGTERM to our own process: run drains the whole fleet.
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("fleet did not drain after SIGTERM")
	}
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("router still answering after drain")
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{bench: "NT3", replicas: 1}, nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run(options{bench: "NT3", dir: t.TempDir(), replicas: 0}, nil); err == nil {
		t.Fatal("zero replicas accepted")
	}
	if err := run(options{bench: "NT99", dir: t.TempDir(), replicas: 1, sampleDiv: 1, featureDiv: 1}, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// No checkpoint and no -bootstrap: refuse to start an unservable
	// fleet rather than spawn replicas that will all fail.
	o := testFleetOptions(t)
	o.bootstrap = false
	if err := run(o, nil); err == nil {
		t.Fatal("empty checkpoint dir accepted without -bootstrap")
	}
}
