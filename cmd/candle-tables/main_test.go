package main

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunPrintsAllSixTables(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		if !strings.Contains(out, "== "+id+":") {
			t.Fatalf("output missing %s", id)
		}
	}
}
