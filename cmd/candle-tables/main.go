// candle-tables prints the paper's six numbered tables (Tables 1–6)
// regenerated from this repository's models.
package main

import (
	"fmt"
	"io"
	"os"

	"candle/internal/core"
)

func main() {
	if err := run(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "candle-tables:", err)
		os.Exit(1)
	}
}

func run(w io.Writer) error {
	for _, id := range []string{"table1", "table2", "table3", "table4", "table5", "table6"} {
		e, ok := core.ByID(id)
		if !ok {
			return fmt.Errorf("missing driver for %s", id)
		}
		t, err := e.Run()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		if _, err := fmt.Fprintln(w, t.String()); err != nil {
			return err
		}
	}
	return nil
}
