package main

import (
	"errors"
	"strings"
	"testing"

	"candle/internal/sim"
)

func TestRunPower(t *testing.T) {
	if err := run("NT3", "summit", 48, "naive", false, 0, 1000, false); err != nil {
		t.Fatal(err)
	}
	if err := run("NT3", "theta", 96, "chunked", false, 0, 1000, true); err != nil {
		t.Fatal(err)
	}
	if err := run("NT3", "summit", 768, "parallel", true, 8, 1000, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPowerErrors(t *testing.T) {
	if err := run("NT3", "frontier", 1, "naive", false, 0, 1, false); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run("NT99", "summit", 1, "naive", false, 0, 1, false); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if err := run("NT3", "summit", 1, "warp", false, 0, 1, false); err == nil {
		t.Fatal("bad loader accepted")
	}
}

func TestRunPowerUnknownBenchmarkIsActionable(t *testing.T) {
	err := run("NT99", "summit", 1, "naive", false, 0, 1, false)
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	var ub *sim.UnknownBenchmarkError
	if !errors.As(err, &ub) {
		t.Fatalf("want UnknownBenchmarkError, got %T: %v", err, err)
	}
	// The message the CLI prints must list the valid pilot names.
	for _, want := range []string{"NT3", "P1B1", "P1B2", "P1B3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}
