package main

import "testing"

func TestRunPower(t *testing.T) {
	if err := run("NT3", "summit", 48, "naive", false, 0, 1000, false); err != nil {
		t.Fatal(err)
	}
	if err := run("NT3", "theta", 96, "chunked", false, 0, 1000, true); err != nil {
		t.Fatal(err)
	}
	if err := run("NT3", "summit", 768, "parallel", true, 8, 1000, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunPowerErrors(t *testing.T) {
	if err := run("NT3", "frontier", 1, "naive", false, 0, 1, false); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run("NT99", "summit", 1, "naive", false, 0, 1, false); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if err := run("NT3", "summit", 1, "warp", false, 0, 1, false); err == nil {
		t.Fatal("bad loader accepted")
	}
}
