// candle-power prints the telemetry a power monitor would log for a
// simulated run: nvidia-smi-style 1 Hz GPU samples on Summit, or the
// PoLiMEr/CapMC node+CPU+memory breakdown at ~2 Hz on Theta —
// Figure 7(a) for any configuration.
//
// Examples:
//
//	candle-power -bench NT3 -ranks 384
//	candle-power -bench NT3 -machine theta -ranks 384 -components
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/hpc"
	"candle/internal/power"
	"candle/internal/sim"
)

func main() {
	var (
		bench      = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		machine    = flag.String("machine", "summit", "summit or theta")
		ranks      = flag.Int("ranks", 384, "worker count")
		loader     = flag.String("loader", "naive", "naive, chunked, parallel")
		weak       = flag.Bool("weak", false, "weak scaling")
		epochs     = flag.Int("epochs", 0, "epochs (0 = default)")
		every      = flag.Int("every", 10, "print every Nth sample")
		components = flag.Bool("components", false, "PoLiMEr-style node/CPU/mem breakdown")
	)
	flag.Parse()
	if err := run(*bench, *machine, *ranks, *loader, *weak, *epochs, *every, *components); err != nil {
		fmt.Fprintln(os.Stderr, "candle-power:", err)
		os.Exit(1)
	}
}

func run(bench, machine string, ranks int, loader string, weak bool, epochs, every int, components bool) error {
	m, err := hpc.ByName(machine)
	if err != nil {
		return err
	}
	b, err := sim.BenchByName(bench)
	if err != nil {
		return err
	}
	ld, err := sim.LoaderByName(loader)
	if err != nil {
		return err
	}
	scaling := sim.Strong
	if weak {
		scaling = sim.Weak
	}
	r, err := sim.Run(sim.Config{
		Machine: m, Bench: b, Ranks: ranks, Scaling: scaling, Epochs: epochs, Loader: ld,
	})
	if err != nil {
		return err
	}
	if every < 1 {
		every = 1
	}
	fmt.Printf("%s on %s, %d workers: load %.0fs, broadcast %.0fs, train %.0fs (total %.0fs)\n",
		bench, m.Name, ranks, r.LoadTime, r.BroadcastTime, r.TrainTime, r.TotalTime)
	if components {
		cm := power.ThetaComponents()
		fmt.Printf("%8s %10s %10s %10s\n", "t_s", "node_W", "cpu_W", "mem_W")
		for i, s := range cm.Samples(r.Profile, m.PowerSampleHz) {
			if i%every == 0 {
				fmt.Printf("%8.0f %10.1f %10.1f %10.1f\n", s.T, s.W.Node, s.W.CPU, s.W.Mem)
			}
		}
		return nil
	}
	fmt.Printf("%8s %10s\n", "t_s", "device_W")
	for i, s := range (power.Sampler{RateHz: m.PowerSampleHz}).Samples(r.Profile, r.PowerModel) {
		if i%every == 0 {
			fmt.Printf("%8.0f %10.1f\n", s.T, s.Watts)
		}
	}
	return nil
}
