// candle-timeline emits a Horovod-style activity timeline in Chrome
// trace-event JSON (open in chrome://tracing), reproducing Figures 7b,
// 12, and 19 of the paper.
//
// Examples:
//
//	candle-timeline -bench NT3 -ranks 384 -loader naive -o fig7b.json
//	candle-timeline -bench NT3 -ranks 384 -loader chunked -o fig12.json
//	candle-timeline -bench NT3 -ranks 768 -weak -epochs 8 -o fig19.json
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/core"
	"candle/internal/sim"
)

func main() {
	var (
		bench  = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		ranks  = flag.Int("ranks", 384, "worker count")
		epochs = flag.Int("epochs", 0, "epochs (0 = default)")
		weak   = flag.Bool("weak", false, "weak scaling")
		loader = flag.String("loader", "naive", "naive, chunked, parallel")
		out    = flag.String("o", "timeline.json", "output file")
	)
	flag.Parse()
	if err := run(*bench, *ranks, *epochs, *weak, *loader, *out); err != nil {
		fmt.Fprintln(os.Stderr, "candle-timeline:", err)
		os.Exit(1)
	}
}

func run(bench string, ranks, epochs int, weak bool, loader, out string) error {
	ld, err := sim.LoaderByName(loader)
	if err != nil {
		return err
	}
	scaling := sim.Strong
	if weak {
		scaling = sim.Weak
	}
	tl, r, err := core.TimelineFor(bench, ranks, scaling, epochs, ld)
	if err != nil {
		return err
	}
	f, err := os.Create(out)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := tl.WriteJSON(f); err != nil {
		return err
	}
	fmt.Printf("wrote %d events to %s (broadcast overhead %.2f s, total %.2f s)\n",
		tl.Len(), out, r.BroadcastTime, r.TotalTime)
	return nil
}
