package main

import (
	"os"
	"path/filepath"
	"testing"

	"candle/internal/trace"
)

func TestRunWritesChromeTrace(t *testing.T) {
	out := filepath.Join(t.TempDir(), "tl.json")
	if err := run("NT3", 384, 0, false, "naive", out); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tl, err := trace.ReadJSON(f)
	if err != nil {
		t.Fatal(err)
	}
	if tl.Len() == 0 {
		t.Fatal("empty timeline")
	}
}

func TestRunWeakScaling(t *testing.T) {
	out := filepath.Join(t.TempDir(), "weak.json")
	if err := run("NT3", 768, 8, true, "chunked", out); err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("NT3", 4, 0, false, "warp", "x.json"); err == nil {
		t.Fatal("bad loader accepted")
	}
	if err := run("NT99", 4, 0, false, "naive", "x.json"); err == nil {
		t.Fatal("bad benchmark accepted")
	}
	if err := run("NT3", 4, 0, false, "naive", "/nonexistent/dir/x.json"); err == nil {
		t.Fatal("unwritable output accepted")
	}
}
