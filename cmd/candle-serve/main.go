// candle-serve answers /predict over HTTP for a trained CANDLE
// benchmark: it loads the newest valid checkpoint from -dir, coalesces
// concurrent requests into micro-batches (the serving analogue of
// Horovod's fusion buffer), and hot-reloads newer checkpoints as a
// training run writes them. SIGINT/SIGTERM drains gracefully: admitted
// requests are answered, new ones get 503.
//
// Examples:
//
//	candle-serve -bench NT3 -dir ./ckpt -addr :8080
//	candle-serve -bench NT3 -dir ./ckpt -bootstrap -sample-div 20 -feature-div 1200
//	candle-serve -bench NT3 -dir ./ckpt -max-batch 1   # unbatched baseline
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"candle/internal/candle"
	"candle/internal/checkpoint"
	"candle/internal/fleet"
	"candle/internal/nn"
	"candle/internal/serve"
)

// options carries the parsed flags; a struct (rather than globals)
// keeps run testable.
type options struct {
	bench, dir, addr      string
	dtype                 string
	sampleDiv, featureDiv int
	maxBatch              int
	maxWait               time.Duration
	replicas, queue       int
	reloadEvery           time.Duration
	workers               int
	bootstrap             bool
	bootstrapEpochs       int
	sloP99                time.Duration
	register              string
	registerNetwork       string
	replicaID             string
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "NT3", "benchmark the checkpoints were trained on: NT3, P1B1, P1B2, P1B3")
	flag.StringVar(&o.dir, "dir", "", "checkpoint directory to load from and watch (required)")
	flag.StringVar(&o.addr, "addr", ":8080", "HTTP listen address")
	flag.StringVar(&o.dtype, "dtype", "", "serving precision: f32, f64, or empty to follow the checkpoint's dtype")
	flag.IntVar(&o.sampleDiv, "sample-div", 20, "dataset sample divisor the model was trained at (1 = paper scale)")
	flag.IntVar(&o.featureDiv, "feature-div", 1200, "feature divisor the model was trained at (1 = paper scale)")
	flag.IntVar(&o.maxBatch, "max-batch", 32, "max requests coalesced into one forward (1 = unbatched)")
	flag.DurationVar(&o.maxWait, "max-wait", 2*time.Millisecond, "max wait for stragglers after a batch's first request")
	flag.IntVar(&o.replicas, "replicas", 2, "model replicas serving batches concurrently")
	flag.IntVar(&o.queue, "queue", 256, "admission queue depth; beyond it requests get 429")
	flag.DurationVar(&o.reloadEvery, "reload-every", 2*time.Second, "checkpoint poll cadence (negative disables hot reload)")
	flag.IntVar(&o.workers, "workers", 0, "tensor kernel pool size shared by all replicas (0 = GOMAXPROCS)")
	flag.BoolVar(&o.bootstrap, "bootstrap", false, "if -dir has no checkpoint, train briefly and write one first")
	flag.IntVar(&o.bootstrapEpochs, "bootstrap-epochs", 4, "epochs for -bootstrap training")
	flag.DurationVar(&o.sloP99, "slo-p99", 0, "p99 latency target; replaces fixed -max-batch/-max-wait with the adaptive SLO controller (they become its ceilings)")
	flag.StringVar(&o.register, "register", "", "candle-fleet control-plane address to register with (joins this server to a fleet)")
	flag.StringVar(&o.registerNetwork, "register-network", "tcp", "network for -register (tcp or unix)")
	flag.StringVar(&o.replicaID, "replica-id", "", "replica identity for -register (required with -register)")
	flag.Parse()
	if err := run(o, nil); err != nil {
		fmt.Fprintln(os.Stderr, "candle-serve:", err)
		os.Exit(1)
	}
}

// run builds the server, listens on o.addr, and serves until
// SIGINT/SIGTERM, then drains. If ready is non-nil it receives the
// bound address once the listener is up (tests use it to find the
// port and to know when to signal).
func run(o options, ready chan<- net.Addr) error {
	if o.dir == "" {
		return fmt.Errorf("-dir is required")
	}
	if o.register != "" && o.replicaID == "" {
		return fmt.Errorf("-register requires -replica-id")
	}
	if o.registerNetwork == "" {
		o.registerNetwork = "tcp"
	}
	b, err := candle.Scaled(o.bench, o.sampleDiv, o.featureDiv)
	if err != nil {
		return err
	}
	if o.bootstrap {
		if err := bootstrap(b, o); err != nil {
			return fmt.Errorf("bootstrap: %w", err)
		}
	}
	s, err := serve.New(serve.Config{
		Benchmark:   b.Spec.Name,
		Dir:         o.dir,
		Factory:     func() *nn.Sequential { return b.Build(b.Spec) },
		Loss:        b.Loss,
		InputDim:    b.Spec.Features,
		DType:       o.dtype,
		MaxBatch:    o.maxBatch,
		MaxWait:     o.maxWait,
		Replicas:    o.replicas,
		QueueDepth:   o.queue,
		ReloadEvery:  o.reloadEvery,
		Workers:      o.workers,
		SLOTargetP99: o.sloP99,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	epoch, step := s.Generation()
	log.Printf("serving %s (features=%d) from %s epoch %d step %d on %s (max-batch %d, replicas %d)",
		b.Spec.Name, b.Spec.Features, o.dir, epoch, step, ln.Addr(), o.maxBatch, o.replicas)
	if o.register != "" {
		// Join a candle-fleet router; it probes /healthz and routes to
		// us once the registration lands.
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		assign, err := fleet.Register(ctx, o.registerNetwork, o.register, o.replicaID, ln.Addr().String(), epoch, step)
		cancel()
		if err != nil {
			ln.Close()
			return fmt.Errorf("registering with fleet at %s: %w", o.register, err)
		}
		log.Printf("registered with fleet at %s as %q (fleet at epoch %d)", o.register, o.replicaID, assign.Epoch)
	}
	// Install the handler before announcing readiness, so a SIGTERM
	// arriving the instant we look ready still drains gracefully.
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sigc)
	if ready != nil {
		ready <- ln.Addr()
	}
	errc := make(chan error, 1)
	go func() { errc <- s.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		log.Printf("%s: draining (admitted requests finish, new ones get 503)", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			return err
		}
		log.Printf("drained, exiting")
		return <-errc
	}
}

// bootstrap trains the benchmark briefly and writes checkpoints into
// o.dir, so a fresh directory becomes servable without a separate
// training run. A directory that already has a loadable checkpoint is
// left alone.
func bootstrap(b *candle.Benchmark, o options) error {
	if _, err := checkpoint.Latest(o.dir, b.Spec.Name); err == nil {
		return nil
	}
	if err := os.MkdirAll(o.dir, 0o755); err != nil {
		return err
	}
	dataDir, err := os.MkdirTemp("", "candle-serve-data-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dataDir)
	if _, _, err := b.PrepareData(dataDir, 7); err != nil {
		return err
	}
	log.Printf("bootstrap: training %s for %d epochs -> %s", b.Spec.Name, o.bootstrapEpochs, o.dir)
	_, err = b.Run(candle.RunConfig{
		Ranks:           1,
		TotalEpochs:     o.bootstrapEpochs,
		Batch:           7,
		DType:           o.dtype, // checkpoints record this precision
		LR:              0.05,    // scaled datasets want a larger step than Table 1's
		Engine:          "chunked",
		DataDir:         dataDir,
		Seed:            7,
		CheckpointDir:   o.dir,
		CheckpointEvery: 1,
	})
	return err
}
