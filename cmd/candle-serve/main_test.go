package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"os"
	"syscall"
	"testing"
	"time"

	"candle/internal/fleet"
)

// testOptions returns a tiny, fast configuration: bootstrap trains a
// scaled NT3 for one epoch into a fresh checkpoint dir.
func testOptions(t *testing.T) options {
	return options{
		bench:           "NT3",
		dir:             t.TempDir(),
		addr:            "127.0.0.1:0",
		sampleDiv:       40,
		featureDiv:      4000,
		maxBatch:        8,
		maxWait:         time.Millisecond,
		replicas:        2,
		queue:           64,
		reloadEvery:     -1,
		bootstrap:       true,
		bootstrapEpochs: 1,
	}
}

// TestServeLifecycle runs the binary's whole arc in-process: bootstrap
// training, HTTP serving, and SIGTERM-triggered graceful drain.
func TestServeLifecycle(t *testing.T) {
	o := testOptions(t)
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(o, ready) }()

	var addr net.Addr
	select {
	case addr = <-ready:
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	base := fmt.Sprintf("http://%s", addr)

	// A /predict round trip through the real HTTP stack.
	features := make([]float64, 15) // NT3 features / 4000
	body, _ := json.Marshal(map[string]any{"features": features})
	resp, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	var pred struct {
		Prediction []float64 `json:"prediction"`
		Epoch      int       `json:"epoch"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pred); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/predict status %d", resp.StatusCode)
	}
	if len(pred.Prediction) == 0 {
		t.Fatalf("bad prediction response: %+v", pred)
	}

	resp, err = http.Get(base + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health struct {
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if health.Status != "ok" {
		t.Fatalf("healthz status %q, want ok", health.Status)
	}

	// SIGTERM to our own process: run's signal handler must drain and
	// return cleanly (the notify channel intercepts it, so the test
	// process survives).
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-errc:
		if err != nil {
			t.Fatalf("run returned %v after SIGTERM, want nil", err)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("server did not drain after SIGTERM")
	}

	// The drained server is gone: a new request must fail to connect.
	if _, err := http.Get(base + "/healthz"); err == nil {
		t.Fatal("server still answering after drain")
	}
}

// TestBootstrapReusesCheckpoint makes sure a second run against the
// same directory serves the existing checkpoint instead of retraining.
func TestBootstrapReusesCheckpoint(t *testing.T) {
	o := testOptions(t)
	for i := 0; i < 2; i++ {
		ready := make(chan net.Addr, 1)
		errc := make(chan error, 1)
		start := time.Now()
		go func() { errc <- run(o, ready) }()
		select {
		case <-ready:
		case err := <-errc:
			t.Fatalf("run %d exited before listening: %v", i, err)
		case <-time.After(60 * time.Second):
			t.Fatalf("run %d never became ready", i)
		}
		elapsed := time.Since(start)
		if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
			t.Fatal(err)
		}
		if err := <-errc; err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		// The second start skips training entirely; allow generous
		// slack, it only has to load one small snapshot.
		if i == 1 && elapsed > 30*time.Second {
			t.Fatalf("second start took %v, expected checkpoint reuse", elapsed)
		}
	}
}

// TestRegisterWithFleet starts a fleet router in-process and a server
// with -register pointed at its control plane: the server must appear
// as a healthy fleet member and take proxied traffic.
func TestRegisterWithFleet(t *testing.T) {
	r := fleet.NewRouter(fleet.Config{HealthEvery: 20 * time.Millisecond, ReloadEvery: -1})
	ctlLn, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = r.ServeControl(ctlLn) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = r.Shutdown(ctx)
	})

	o := testOptions(t)
	o.register = ctlLn.Addr().String()
	o.replicaID = "s0"
	ready := make(chan net.Addr, 1)
	errc := make(chan error, 1)
	go func() { errc <- run(o, ready) }()
	select {
	case <-ready:
	case err := <-errc:
		t.Fatalf("run exited before listening: %v", err)
	case <-time.After(60 * time.Second):
		t.Fatal("server never became ready")
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		members := r.Members()
		if len(members) == 1 && members[0].ID == "s0" && members[0].Healthy {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server never became a healthy member: %+v", members)
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("run returned %v after SIGTERM", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(options{bench: "NT3"}, nil); err == nil {
		t.Fatal("missing -dir accepted")
	}
	if err := run(options{bench: "NT3", dir: os.TempDir(), register: "127.0.0.1:1"}, nil); err == nil {
		t.Fatal("-register without -replica-id accepted")
	}
	if err := run(options{bench: "NT99", dir: t.TempDir(), sampleDiv: 1, featureDiv: 1}, nil); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// No checkpoint and no -bootstrap: the server must refuse to start
	// rather than serve garbage.
	o := testOptions(t)
	o.bootstrap = false
	if err := run(o, nil); err == nil {
		t.Fatal("empty checkpoint dir accepted without -bootstrap")
	}
}
