package main

import "testing"

func TestRunAdvise(t *testing.T) {
	if err := run("NT3", "summit", "time", 0.99, 0, 0, 0, false, false); err != nil {
		t.Fatal(err)
	}
	if err := run("NT3", "summit", "energy", 0.99, 0, 0, 0, false, true); err != nil {
		t.Fatal(err)
	}
	if err := run("P1B3", "summit", "time", 0.64, 0, 0, 1, true, false); err != nil {
		t.Fatal(err)
	}
	if err := run("P1B1", "theta", "time", 0, 0.1, 96, 0, false, false); err != nil {
		t.Fatal(err)
	}
}

func TestRunAdviseErrors(t *testing.T) {
	if err := run("NT3", "frontier", "time", 0, 0, 0, 0, false, false); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run("NT3", "summit", "speed", 0, 0, 0, 0, false, false); err == nil {
		t.Fatal("bad objective accepted")
	}
	if err := run("NT3", "summit", "time", 0.99999999, 0, 0, 0, false, false); err == nil {
		t.Fatal("infeasible request should error")
	}
}
