package main

import (
	"path/filepath"
	"strings"
	"testing"
	"time"

	"candle/internal/e2ebench"
)

func TestRunAdvise(t *testing.T) {
	cases := []options{
		{bench: "NT3", machine: "summit", objective: "time", minAcc: 0.99},
		{bench: "NT3", machine: "summit", objective: "energy", minAcc: 0.99, all: true},
		{bench: "P1B3", machine: "summit", objective: "time", minAcc: 0.64, epochs: 1, scaleBatch: true},
		{bench: "P1B1", machine: "theta", objective: "time", maxLoss: 0.1, maxWorkers: 96},
	}
	for _, o := range cases {
		if err := run(o); err != nil {
			t.Fatalf("%+v: %v", o, err)
		}
	}
}

func TestRunAdviseErrors(t *testing.T) {
	if err := run(options{bench: "NT3", machine: "frontier", objective: "time"}); err == nil {
		t.Fatal("bad machine accepted")
	}
	if err := run(options{bench: "NT3", machine: "summit", objective: "speed"}); err == nil {
		t.Fatal("bad objective accepted")
	}
	if err := run(options{bench: "NT3", machine: "summit", objective: "time", minAcc: 0.99999999}); err == nil {
		t.Fatal("infeasible request should error")
	}
}

func TestRunAdviseUnknownBenchmarkIsActionable(t *testing.T) {
	err := run(options{bench: "NT99", machine: "summit", objective: "time"})
	if err == nil {
		t.Fatal("unknown benchmark accepted")
	}
	// The error must name the valid pilots, not just reject.
	for _, want := range []string{"NT99", "NT3", "P1B1", "P1B2", "P1B3"} {
		if !strings.Contains(err.Error(), want) {
			t.Fatalf("error %q does not mention %s", err, want)
		}
	}
}

// writeFixture writes a minimal measured artifact with one NT3 config.
func writeFixture(t *testing.T) string {
	t.Helper()
	m := &e2ebench.Metrics{Seed: 1, Pilots: []e2ebench.PilotResult{{
		Spec: e2ebench.PilotSpec{Name: "NT3", Batch: 7,
			TargetKind: e2ebench.TargetAccuracy, Target: 0.7},
		Configs: []e2ebench.ConfigResult{{
			Config:        e2ebench.Config{Engine: "sharded", Ranks: 2, Batch: 7, DType: "f64"},
			ReachedTarget: true, TimeToTargetS: 2, EnergyToTargetJ: 150,
			TotalS: 4, EnergyJ: 300, FinalTestAcc: 0.9, FinalTestLoss: 0.2,
			EpochEndS:     []float64{1, 2, 3, 4},
			EpochTestAcc:  []float64{0.5, 0.7, 0.8, 0.9},
			EpochTestLoss: []float64{0.9, 0.6, 0.4, 0.2},
			EpochEnergyJ:  []float64{75, 150, 225, 300},
		}},
	}}}
	path := filepath.Join(t.TempDir(), "BENCH_e2e.json")
	if err := e2ebench.Write(path, m, "advise test fixture"); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunAdviseFromBench(t *testing.T) {
	path := writeFixture(t)
	o := options{bench: "NT3", objective: "time", minAcc: 0.7,
		fromBench: path, deadline: 300 * time.Second, all: true}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	// A deadline tighter than any measured crossing is infeasible.
	o.deadline = time.Millisecond
	if err := run(o); err == nil {
		t.Fatal("impossible deadline accepted")
	}
	// A pilot absent from the artifact is rejected with the known list.
	err := run(options{bench: "P1B2", objective: "time", fromBench: path})
	if err == nil || !strings.Contains(err.Error(), "NT3") {
		t.Fatalf("unknown pilot error not actionable: %v", err)
	}
	// A non-e2e artifact is a schema error, not a panic or silence.
	if err := run(options{bench: "NT3", objective: "time", fromBench: "main.go"}); err == nil {
		t.Fatal("garbage artifact accepted")
	}
}
