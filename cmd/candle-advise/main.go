// candle-advise recommends a run configuration from the calibrated
// performance/power models: the fewest seconds or joules that still
// meet an accuracy floor.
//
// Examples:
//
//	candle-advise -bench NT3 -min-accuracy 0.99
//	candle-advise -bench NT3 -objective energy -min-accuracy 0.99
//	candle-advise -bench P1B3 -scale-batch -min-accuracy 0.64 -epochs 1
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/advisor"
	"candle/internal/hpc"
)

func main() {
	var (
		bench      = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		machine    = flag.String("machine", "summit", "summit or theta")
		objective  = flag.String("objective", "time", "time, energy, or edp")
		minAcc     = flag.Float64("min-accuracy", 0, "accuracy floor (classification)")
		maxLoss    = flag.Float64("max-loss", 0, "loss ceiling (P1B1)")
		maxWorkers = flag.Int("max-workers", 0, "cap on workers (0 = 384)")
		epochs     = flag.Int("epochs", 0, "total epoch budget (0 = default)")
		scaleBatch = flag.Bool("scale-batch", false, "also sweep linear/sqrt/cbrt batch scaling")
		all        = flag.Bool("all", false, "print every candidate, not just the winner")
	)
	flag.Parse()
	if err := run(*bench, *machine, *objective, *minAcc, *maxLoss, *maxWorkers, *epochs, *scaleBatch, *all); err != nil {
		fmt.Fprintln(os.Stderr, "candle-advise:", err)
		os.Exit(1)
	}
}

func run(bench, machine, objective string, minAcc, maxLoss float64, maxWorkers, epochs int, scaleBatch, all bool) error {
	m, err := hpc.ByName(machine)
	if err != nil {
		return err
	}
	var obj advisor.Objective
	switch objective {
	case "time":
		obj = advisor.MinTime
	case "energy":
		obj = advisor.MinEnergy
	case "edp":
		obj = advisor.MinEDP
	default:
		return fmt.Errorf("unknown objective %q", objective)
	}
	best, candidates, err := advisor.Recommend(advisor.Request{
		Benchmark: bench, Machine: m, Objective: obj,
		MinAccuracy: minAcc, MaxLoss: maxLoss,
		MaxWorkers: maxWorkers, Epochs: epochs, ScaleBatch: scaleBatch,
	})
	if all {
		for _, c := range candidates {
			fmt.Printf("  candidate: %s\n", c)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s on %s (%s", bench, m.Name, obj)
	if minAcc > 0 {
		fmt.Printf(", accuracy ≥ %.3f", minAcc)
	}
	fmt.Println("):")
	fmt.Printf("  recommended: %s\n", best)
	return nil
}
