// candle-advise recommends a run configuration: the fewest seconds or
// joules that still meet an accuracy floor. Predictions come from the
// paper-calibrated performance/power models by default, or — with
// -from-bench — from a BENCH_e2e.json artifact this machine produced,
// in which case the recommendation is backed by measured trajectories
// instead of analytic curves.
//
// Examples:
//
//	candle-advise -bench NT3 -min-accuracy 0.99
//	candle-advise -bench NT3 -objective energy -min-accuracy 0.99
//	candle-advise -bench P1B3 -scale-batch -min-accuracy 0.64 -epochs 1
//	candle-advise -bench NT3 -from-bench BENCH_e2e.json -min-accuracy 0.7 -deadline 300s
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"candle/internal/advisor"
	"candle/internal/hpc"
)

// options collects the flag values run needs.
type options struct {
	bench      string
	machine    string
	objective  string
	minAcc     float64
	maxLoss    float64
	maxWorkers int
	epochs     int
	scaleBatch bool
	all        bool
	fromBench  string
	deadline   time.Duration
}

func main() {
	var o options
	flag.StringVar(&o.bench, "bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
	flag.StringVar(&o.machine, "machine", "summit", "summit or theta (analytic predictions only)")
	flag.StringVar(&o.objective, "objective", "time", "time, energy, or edp")
	flag.Float64Var(&o.minAcc, "min-accuracy", 0, "accuracy floor (classification)")
	flag.Float64Var(&o.maxLoss, "max-loss", 0, "loss ceiling (P1B1)")
	flag.IntVar(&o.maxWorkers, "max-workers", 0, "cap on workers (0 = 384)")
	flag.IntVar(&o.epochs, "epochs", 0, "total epoch budget (0 = default)")
	flag.BoolVar(&o.scaleBatch, "scale-batch", false, "also sweep linear/sqrt/cbrt batch scaling")
	flag.BoolVar(&o.all, "all", false, "print every candidate, not just the winner")
	flag.StringVar(&o.fromBench, "from-bench", "", "recommend from a measured BENCH_e2e.json instead of the analytic models")
	flag.DurationVar(&o.deadline, "deadline", 0, "reject plans slower than this (e.g. 300s; 0 = none)")
	flag.Parse()
	if err := run(o); err != nil {
		fmt.Fprintln(os.Stderr, "candle-advise:", err)
		os.Exit(1)
	}
}

func run(o options) error {
	var obj advisor.Objective
	switch o.objective {
	case "time":
		obj = advisor.MinTime
	case "energy":
		obj = advisor.MinEnergy
	case "edp":
		obj = advisor.MinEDP
	default:
		return fmt.Errorf("unknown objective %q", o.objective)
	}
	req := advisor.Request{
		Benchmark: o.bench, Objective: obj,
		MinAccuracy: o.minAcc, MaxLoss: o.maxLoss,
		MaxWorkers: o.maxWorkers, Epochs: o.epochs, ScaleBatch: o.scaleBatch,
		DeadlineS: o.deadline.Seconds(),
	}
	var source string
	if o.fromBench != "" {
		cal, err := advisor.LoadMeasured(o.fromBench)
		if err != nil {
			return err
		}
		req.Calibration = cal
		source = cal.Name()
	} else {
		m, err := hpc.ByName(o.machine)
		if err != nil {
			return err
		}
		req.Machine = m
		source = "analytic models, " + m.Name
	}
	best, candidates, err := advisor.Recommend(req)
	if o.all {
		for _, c := range candidates {
			fmt.Printf("  candidate: %s\n", c)
		}
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s (%s, %s", o.bench, source, obj)
	if o.minAcc > 0 {
		fmt.Printf(", accuracy ≥ %.3f", o.minAcc)
	}
	if o.maxLoss > 0 {
		fmt.Printf(", loss ≤ %.3g", o.maxLoss)
	}
	if o.deadline > 0 {
		fmt.Printf(", deadline %s", o.deadline)
	}
	fmt.Println("):")
	fmt.Printf("  recommended: %s\n", best)
	return nil
}
