package main

import "testing"

func TestRunProfile(t *testing.T) {
	// The scaled default NT3 profiles quickly.
	if err := run("NT3", 8, 2, 1); err != nil {
		t.Fatal(err)
	}
	// Batch larger than the dataset clamps rather than fails.
	if err := run("P1B2", 1<<20, 1, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunProfileErrors(t *testing.T) {
	if err := run("NT99", 8, 1, 1); err == nil {
		t.Fatal("bad benchmark accepted")
	}
}
