// candle-profile produces an NVProf-style per-layer forward/backward
// timing profile of a benchmark's model — the per-op view the paper
// plans to use "to identify the other performance bottlenecks".
//
// Example:
//
//	candle-profile -bench NT3 -batch 20 -reps 10
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/candle"
	"candle/internal/data"
	"candle/internal/nn"
)

func main() {
	var (
		bench = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		batch = flag.Int("batch", 0, "batch size (0 = benchmark default)")
		reps  = flag.Int("reps", 10, "forward+backward repetitions")
		seed  = flag.Int64("seed", 1, "data/init seed")
	)
	flag.Parse()
	if err := run(*bench, *batch, *reps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "candle-profile:", err)
		os.Exit(1)
	}
}

func run(bench string, batch, reps int, seed int64) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	if batch <= 0 {
		batch = b.Cal.DefaultBatch
	}
	if batch > b.Spec.TrainSamples {
		batch = b.Spec.TrainSamples
	}
	ds, err := data.Generate(b.Spec, seed)
	if err != nil {
		return err
	}
	model := b.Build(b.Spec)
	if err := model.Compile(b.Spec.Features, b.Loss, nn.NewOptimizer(b.Cal.Optimizer, 0.01), seed); err != nil {
		return err
	}
	x := ds.X.RowSlice(0, batch)
	y := ds.Y.RowSlice(0, batch)
	timings, err := nn.ProfileLayers(model, b.Loss, x, y, reps)
	if err != nil {
		return err
	}
	fmt.Println(model.Summary())
	fmt.Printf("per-layer timings, batch %d, %d reps:\n\n", batch, reps)
	fmt.Print(nn.FormatLayerProfile(timings))
	return nil
}
