// candle-profile produces an NVProf-style per-layer forward/backward
// timing profile of a benchmark's model — the per-op view the paper
// plans to use "to identify the other performance bottlenecks".
//
// Example:
//
//	candle-profile -bench NT3 -batch 20 -reps 10
package main

import (
	"flag"
	"fmt"
	"os"

	"candle/internal/candle"
	"candle/internal/csvio"
	"candle/internal/data"
	"candle/internal/nn"
)

func main() {
	var (
		bench  = flag.String("bench", "NT3", "benchmark: NT3, P1B1, P1B2, P1B3")
		batch  = flag.Int("batch", 0, "batch size (0 = benchmark default)")
		reps   = flag.Int("reps", 10, "forward+backward repetitions")
		seed   = flag.Int64("seed", 1, "data/init seed")
		engine = flag.String("engine", "", "profile phase-1 loading with this CSV engine instead of the model layers (see -engine list)")
	)
	flag.Parse()
	if *engine == "list" {
		for _, name := range csvio.Engines() {
			fmt.Println(name)
		}
		return
	}
	if *engine != "" {
		if err := runLoad(*bench, *engine, *seed); err != nil {
			fmt.Fprintln(os.Stderr, "candle-profile:", err)
			os.Exit(1)
		}
		return
	}
	if err := run(*bench, *batch, *reps, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "candle-profile:", err)
		os.Exit(1)
	}
}

// runLoad profiles phase 1 only: generate the benchmark's CSVs, read
// the train file twice with the named engine, and print each pass's
// stats — the second pass shows the sharded engine's warm cache.
func runLoad(bench, engine string, seed int64) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	dir, err := os.MkdirTemp("", "candle-profile-")
	if err != nil {
		return err
	}
	defer os.RemoveAll(dir)
	if _, _, err := b.PrepareData(dir, seed); err != nil {
		return err
	}
	trainPath, _ := b.Files(dir)
	for pass := 1; pass <= 2; pass++ {
		r, err := csvio.ByName(engine)
		if err != nil {
			return err
		}
		m, stats, err := r.Read(trainPath)
		if err != nil {
			return err
		}
		fmt.Printf("pass %d: %s: %dx%d, %d bytes read, %d chunks, %.4f s",
			pass, r.Name(), m.Rows, m.Cols, stats.BytesRead, stats.Chunks, stats.Seconds)
		if stats.CacheHit {
			fmt.Print("  [cache hit]")
		}
		if stats.SerialFallback {
			fmt.Print("  [serial fallback]")
		}
		fmt.Println()
	}
	return nil
}

func run(bench string, batch, reps int, seed int64) error {
	b, err := candle.Default(bench)
	if err != nil {
		return err
	}
	if batch <= 0 {
		batch = b.Cal.DefaultBatch
	}
	if batch > b.Spec.TrainSamples {
		batch = b.Spec.TrainSamples
	}
	ds, err := data.Generate(b.Spec, seed)
	if err != nil {
		return err
	}
	model := b.Build(b.Spec)
	if err := model.Compile(b.Spec.Features, b.Loss, nn.NewOptimizer(b.Cal.Optimizer, 0.01), seed); err != nil {
		return err
	}
	x := ds.X.RowSlice(0, batch)
	y := ds.Y.RowSlice(0, batch)
	timings, err := nn.ProfileLayers(model, b.Loss, x, y, reps)
	if err != nil {
		return err
	}
	fmt.Println(model.Summary())
	fmt.Printf("per-layer timings, batch %d, %d reps:\n\n", batch, reps)
	fmt.Print(nn.FormatLayerProfile(timings))
	return nil
}
