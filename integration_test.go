package candlebench

// Integration tests: cross-package flows exercised end to end — the
// full three-phase pipeline against every loader engine, timeline
// files written and parsed back, the advisor driven by the simulator,
// and the supervisor driving real training runs.

import (
	"bytes"
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"candle/internal/advisor"
	"candle/internal/candle"
	"candle/internal/checkpoint"
	"candle/internal/core"
	"candle/internal/csvio"
	"candle/internal/hpc"
	"candle/internal/sim"
	"candle/internal/supervisor"
	"candle/internal/trace"
)

func TestEndToEndAllLoadersProduceSameTraining(t *testing.T) {
	bench, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := bench.PrepareData(dir, 21); err != nil {
		t.Fatal(err)
	}
	var checksums []float64
	for _, engine := range csvio.Engines() {
		res, err := bench.Run(candle.RunConfig{
			Ranks: 2, TotalEpochs: 8, Batch: 7, LR: 0.05,
			Engine: engine, DataDir: dir, Seed: 21,
		})
		if err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
		checksums = append(checksums, res.Root.WeightsChecksum)
	}
	// Same data + same seed ⇒ identical training regardless of the
	// loading engine (the optimization must not change results).
	for i := 1; i < len(checksums); i++ {
		if math.Abs(checksums[i]-checksums[0]) > 1e-9*(1+math.Abs(checksums[0])) {
			t.Fatalf("loader changed training outcome: %v", checksums)
		}
	}
}

func TestEndToEndTimelineFileRoundTrip(t *testing.T) {
	tl, r, err := core.TimelineFor("NT3", 384, sim.Strong, 0, sim.LoaderNaive)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "fig7b.json")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := tl.WriteJSON(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	back, err := trace.ReadJSON(bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != tl.Len() {
		t.Fatalf("round trip lost events: %d vs %d", back.Len(), tl.Len())
	}
	start, end, ok := back.Span("broadcast")
	if !ok || math.Abs((end-start)-r.BroadcastTime) > 0.5 {
		t.Fatalf("broadcast span %v..%v vs %v", start, end, r.BroadcastTime)
	}
}

func TestEndToEndCorruptCSVFailsCleanly(t *testing.T) {
	bench, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	trainPath, _, err := bench.PrepareData(dir, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the training file mid-way.
	raw, err := os.ReadFile(trainPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := strings.Replace(string(raw), ",", ",GARBAGE,", 1)
	if err := os.WriteFile(trainPath, []byte(corrupted), 0o644); err != nil {
		t.Fatal(err)
	}
	for _, engine := range csvio.Engines() {
		_, err := bench.Run(candle.RunConfig{
			Ranks: 2, TotalEpochs: 2, Batch: 7, Engine: engine, DataDir: dir, Seed: 1,
		})
		if err == nil {
			t.Fatalf("%s: corrupt CSV accepted", engine)
		}
	}
}

func TestEndToEndAdvisorAgainstSimulator(t *testing.T) {
	// The advisor's recommended plan, re-run through the simulator,
	// must reproduce the promised time/energy exactly.
	best, _, err := advisor.Recommend(advisor.Request{
		Benchmark: "NT3", Machine: hpc.Summit(),
		Objective: advisor.MinTime, MinAccuracy: 0.99,
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := sim.BenchByName("NT3")
	if err != nil {
		t.Fatal(err)
	}
	r, err := sim.Run(sim.Config{
		Machine: hpc.Summit(), Bench: b, Ranks: best.Workers,
		Scaling: sim.Strong, Batch: best.Batch, Loader: best.Loader,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.TotalTime-best.TimeS) > 1e-9 {
		t.Fatalf("advisor time %v != simulator %v", best.TimeS, r.TotalTime)
	}
	if math.Abs(r.TotalEnergyJ-best.EnergyJ) > 1e-6 {
		t.Fatalf("advisor energy %v != simulator %v", best.EnergyJ, r.TotalEnergyJ)
	}
}

func TestEndToEndSupervisorOverRealTraining(t *testing.T) {
	bench, err := candle.Scaled("NT3", 56, 2000)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := bench.PrepareData(dir, 9); err != nil {
		t.Fatal(err)
	}
	space, err := supervisor.GridSpace([]supervisor.Dimension{
		{Name: "lr", Values: []float64{0.005, 0.08}},
		{Name: "batch", Values: []float64{4, 8}},
	})
	if err != nil {
		t.Fatal(err)
	}
	store, err := supervisor.OpenFileStore(filepath.Join(dir, "db.json"))
	if err != nil {
		t.Fatal(err)
	}
	sup := supervisor.New(2, store)
	trials, err := sup.Run(space, func(p supervisor.Params) (supervisor.Result, error) {
		start := time.Now()
		res, err := bench.Run(candle.RunConfig{
			Ranks: 2, TotalEpochs: 10, Batch: int(p["batch"]), LR: p["lr"],
			DataDir: dir, Seed: 9,
		})
		if err != nil {
			return supervisor.Result{}, err
		}
		return supervisor.Result{Loss: res.Root.TestLoss, Accuracy: res.Root.TestAccuracy,
			Seconds: time.Since(start).Seconds()}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(trials) != 4 {
		t.Fatalf("trials = %d", len(trials))
	}
	best, ok := supervisor.Best(trials, supervisor.MinLoss)
	if !ok {
		t.Fatal("no successful trial")
	}
	// The higher LR learns the scaled dataset better in 10 epochs.
	if best.Params["lr"] != 0.08 {
		t.Fatalf("unexpected best lr %v (trials: %+v)", best.Params["lr"], trials)
	}
	if store.Len() != 4 {
		t.Fatalf("db holds %d trials", store.Len())
	}
}

func TestEndToEndCheckpointCrashRestart(t *testing.T) {
	// Simulate a crash-restart cycle: run half the epochs with
	// checkpointing, "crash", resume into the second half, and verify
	// the final model quality matches an uninterrupted run's ballpark.
	bench, err := candle.Scaled("NT3", 40, 1500)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, _, err := bench.PrepareData(dir, 31); err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir()
	if _, err := bench.Run(candle.RunConfig{
		Ranks: 2, TotalEpochs: 16, Batch: 7, LR: 0.05, DataDir: dir, Seed: 31,
		CheckpointDir: ckpt, CheckpointEvery: 1,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := checkpoint.Latest(ckpt, bench.Spec.Name); err != nil {
		t.Fatal(err)
	}
	resumed, err := bench.Run(candle.RunConfig{
		Ranks: 2, TotalEpochs: 16, Batch: 7, LR: 0.05, DataDir: dir, Seed: 32,
		CheckpointDir: ckpt, Resume: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Root.ResumedFromEpoch < 0 {
		t.Fatal("did not resume")
	}
	if resumed.Root.TrainAccuracy < 0.95 {
		t.Fatalf("post-restart accuracy %v", resumed.Root.TrainAccuracy)
	}
}

func TestEndToEndOOMIsTyped(t *testing.T) {
	b, err := sim.BenchByName("P1B3")
	if err != nil {
		t.Fatal(err)
	}
	_, err = sim.Run(sim.Config{
		Machine: hpc.Summit(), Bench: b, Ranks: 384, Scaling: sim.Strong,
		Epochs: 1, Batch: 38400, Loader: sim.LoaderNaive,
	})
	if !errors.Is(err, sim.ErrOutOfMemory) {
		t.Fatalf("want typed OOM, got %v", err)
	}
}

func TestEndToEndEveryExperimentRendersCSV(t *testing.T) {
	tables, err := core.RunAll()
	if err != nil {
		t.Fatal(err)
	}
	for _, tb := range tables {
		csv := tb.CSV()
		if !strings.Contains(csv, "\n") {
			t.Fatalf("%s: degenerate CSV", tb.ID)
		}
		lines := strings.Split(strings.TrimSpace(csv), "\n")
		header := strings.Count(lines[0], ",")
		for _, ln := range lines[1:] {
			if strings.HasPrefix(ln, "#") {
				continue
			}
			if strings.Count(ln, ",") < header {
				t.Fatalf("%s: ragged CSV line %q", tb.ID, ln)
			}
		}
	}
}
